#include <vector>

#include "gtest/gtest.h"
#include "objmodel/inheritance.h"
#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"
#include "util/random.h"

namespace oodb::obj {
namespace {

// ---------------------------------------------------------------- types

class TypeLatticeTest : public ::testing::Test {
 protected:
  TypeLattice lattice_;
};

TEST_F(TypeLatticeTest, DefineAndFind) {
  TypeId layout = lattice_.DefineType("layout", kInvalidType, 64,
                                      {4.0, 1.0, 0.5, 0.2});
  EXPECT_EQ(lattice_.info(layout).name, "layout");
  auto found = lattice_.FindType("layout");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, layout);
  EXPECT_FALSE(lattice_.FindType("nonesuch").ok());
}

TEST_F(TypeLatticeTest, SubtypeChain) {
  TypeId cell = lattice_.DefineType("cell", kInvalidType, 32, {});
  TypeId macro = lattice_.DefineType("macro", cell, 32, {});
  TypeId alu = lattice_.DefineType("alu", macro, 32, {});
  EXPECT_TRUE(lattice_.IsSubtypeOf(alu, cell));
  EXPECT_TRUE(lattice_.IsSubtypeOf(alu, alu));
  EXPECT_FALSE(lattice_.IsSubtypeOf(cell, alu));
}

TEST_F(TypeLatticeTest, AttributesInheritedAlongLattice) {
  TypeId base = lattice_.DefineType(
      "base", kInvalidType, 16, {},
      {{"color", 4, false, 0.1, 0.0}, {"owner", 8, false, 0.1, 0.0}});
  TypeId derived = lattice_.DefineType("derived", base, 16, {},
                                       {{"area", 8, false, 0.2, 0.0}});
  auto attrs = lattice_.ResolveAttributes(derived);
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(lattice_.InstanceSize(derived), 16u + 4 + 8 + 8);
}

TEST_F(TypeLatticeTest, NearerDefinitionOverridesInherited) {
  TypeId base = lattice_.DefineType("base", kInvalidType, 16, {},
                                    {{"geom", 100, false, 0.1, 0.0}});
  TypeId derived = lattice_.DefineType("derived", base, 16, {},
                                       {{"geom", 20, false, 0.9, 0.0}});
  auto attrs = lattice_.ResolveAttributes(derived);
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].size_bytes, 20u);
  EXPECT_DOUBLE_EQ(attrs[0].read_frequency, 0.9);
}

TEST_F(TypeLatticeTest, TraversalProfileFallsBackToSupertype) {
  TypeId base =
      lattice_.DefineType("base", kInvalidType, 16, {9.0, 1.0, 1.0, 1.0});
  TypeId derived = lattice_.DefineType("derived", base, 16, {});  // all-zero
  auto prof = lattice_.EffectiveTraversal(derived);
  EXPECT_DOUBLE_EQ(prof[0], 9.0);
}

TEST_F(TypeLatticeTest, NoProfileAnywhereIsUniform) {
  TypeId t = lattice_.DefineType("plain", kInvalidType, 16, {});
  auto prof = lattice_.EffectiveTraversal(t);
  for (double w : prof) EXPECT_DOUBLE_EQ(w, 1.0);
}

// ---------------------------------------------------------------- graph

class ObjectGraphTest : public ::testing::Test {
 protected:
  ObjectGraphTest() : graph_(&lattice_) {
    layout_ = lattice_.DefineType("layout", kInvalidType, 64,
                                  {4.0, 1.0, 0.5, 0.2});
    netlist_ = lattice_.DefineType("netlist", kInvalidType, 48,
                                   {6.0, 0.5, 0.5, 0.1});
  }

  TypeLattice lattice_;
  ObjectGraph graph_;
  TypeId layout_ = 0, netlist_ = 0;
};

TEST_F(ObjectGraphTest, CreateAndName) {
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId o = graph_.Create(alu, 2, layout_, 100);
  EXPECT_TRUE(graph_.IsLive(o));
  EXPECT_EQ(graph_.NameOf(o).ToString(), "ALU[2].layout");
  EXPECT_EQ(graph_.object(o).size_bytes, 100u);
  EXPECT_EQ(graph_.live_count(), 1u);
}

TEST_F(ObjectGraphTest, ConfigurationIsDirectional) {
  FamilyId dp = graph_.NewFamily("DATAPATH");
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId parent = graph_.Create(dp, 1, layout_, 100);
  ObjectId child = graph_.Create(alu, 1, layout_, 100);
  graph_.Relate(parent, child, RelKind::kConfiguration);
  EXPECT_EQ(graph_.Components(parent), std::vector<ObjectId>{child});
  EXPECT_EQ(graph_.Composites(child), std::vector<ObjectId>{parent});
  EXPECT_TRUE(graph_.Components(child).empty());
  EXPECT_TRUE(graph_.Composites(parent).empty());
}

TEST_F(ObjectGraphTest, VersionHistoryAncestry) {
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId v1 = graph_.Create(alu, 1, layout_, 80);
  ObjectId v2 = graph_.Create(alu, 2, layout_, 80);
  graph_.Relate(v1, v2, RelKind::kVersionHistory);
  EXPECT_EQ(graph_.Descendants(v1), std::vector<ObjectId>{v2});
  EXPECT_EQ(graph_.Ancestors(v2), std::vector<ObjectId>{v1});
}

TEST_F(ObjectGraphTest, CorrespondenceIsSymmetric) {
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId lay = graph_.Create(alu, 1, layout_, 80);
  ObjectId net = graph_.Create(alu, 1, netlist_, 60);
  graph_.Relate(lay, net, RelKind::kCorrespondence);
  EXPECT_EQ(graph_.Correspondents(lay), std::vector<ObjectId>{net});
  EXPECT_EQ(graph_.Correspondents(net), std::vector<ObjectId>{lay});
}

TEST_F(ObjectGraphTest, UnrelateRemovesBothDirections) {
  FamilyId a = graph_.NewFamily("A");
  ObjectId x = graph_.Create(a, 1, layout_, 10);
  ObjectId y = graph_.Create(a, 1, netlist_, 10);
  graph_.Relate(x, y, RelKind::kConfiguration);
  graph_.Unrelate(x, y, RelKind::kConfiguration);
  EXPECT_TRUE(graph_.Components(x).empty());
  EXPECT_TRUE(graph_.Composites(y).empty());
}

TEST_F(ObjectGraphTest, RemoveDetachesNeighbours) {
  FamilyId a = graph_.NewFamily("A");
  ObjectId x = graph_.Create(a, 1, layout_, 10);
  ObjectId y = graph_.Create(a, 1, netlist_, 10);
  ObjectId z = graph_.Create(a, 2, netlist_, 10);
  graph_.Relate(x, y, RelKind::kConfiguration);
  graph_.Relate(x, z, RelKind::kCorrespondence);
  graph_.Remove(x);
  EXPECT_FALSE(graph_.IsLive(x));
  EXPECT_TRUE(graph_.Composites(y).empty());
  EXPECT_TRUE(graph_.Correspondents(z).empty());
  EXPECT_EQ(graph_.live_count(), 2u);
}

TEST_F(ObjectGraphTest, LatestVersionPicksHighest) {
  FamilyId alu = graph_.NewFamily("ALU");
  graph_.Create(alu, 1, layout_, 10);
  ObjectId v3 = graph_.Create(alu, 3, layout_, 10);
  graph_.Create(alu, 2, layout_, 10);
  graph_.Create(alu, 9, netlist_, 10);  // different type: ignored
  EXPECT_EQ(graph_.LatestVersion(alu, layout_), v3);
}

TEST_F(ObjectGraphTest, FamilyMembersTracksCreationAndRemoval) {
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId v1 = graph_.Create(alu, 1, layout_, 10);
  ObjectId v2 = graph_.Create(alu, 2, layout_, 10);
  EXPECT_EQ(graph_.FamilyMembers(alu).size(), 2u);
  graph_.Remove(v1);
  ASSERT_EQ(graph_.FamilyMembers(alu).size(), 1u);
  EXPECT_EQ(graph_.FamilyMembers(alu)[0], v2);
}

TEST_F(ObjectGraphTest, ForEachRelatedSeesAllKinds) {
  FamilyId a = graph_.NewFamily("A");
  ObjectId x = graph_.Create(a, 1, layout_, 10);
  ObjectId y = graph_.Create(a, 1, netlist_, 10);
  ObjectId z = graph_.Create(a, 2, layout_, 10);
  graph_.Relate(x, y, RelKind::kCorrespondence);
  graph_.Relate(x, z, RelKind::kVersionHistory);
  int related = 0;
  graph_.ForEachRelated(x, [&](ObjectId) { ++related; });
  EXPECT_EQ(related, 2);
}

// ----------------------------------------------------------- inheritance

TEST(InheritanceCostTest, LargeRarelyReadAttributeGoesByReference) {
  InheritanceCostModel model;
  AttributeDef big{"geometry", 2000, true, /*read=*/0.05, /*update=*/0.0};
  EXPECT_EQ(ChooseImplementation(big, model), ImplChoice::kByReference);
}

TEST(InheritanceCostTest, SmallHotAttributeGoesByCopy) {
  InheritanceCostModel model;
  AttributeDef hot{"bbox", 16, true, /*read=*/3.0, /*update=*/0.0};
  EXPECT_EQ(ChooseImplementation(hot, model), ImplChoice::kByCopy);
}

TEST(InheritanceCostTest, FrequentSourceUpdatesPushTowardReference) {
  InheritanceCostModel model;
  AttributeDef churny{"status", 16, true, /*read=*/0.2, /*update=*/5.0};
  EXPECT_EQ(ChooseImplementation(churny, model), ImplChoice::kByReference);
}

class DeriveVersionTest : public ::testing::Test {
 protected:
  DeriveVersionTest() : graph_(&lattice_) {
    layout_ = lattice_.DefineType(
        "layout", kInvalidType, 64, {4.0, 1.0, 0.5, 0.2},
        {{"bbox", 16, true, 3.0, 0.0},        // hot + small -> copy
         {"geometry", 2000, true, 0.05, 0.0},  // big + cold -> reference
         {"label", 24, false, 0.5, 0.0}});     // not inheritable -> copy
    netlist_ = lattice_.DefineType("netlist", kInvalidType, 48,
                                   {6.0, 0.5, 0.5, 0.1});
  }

  TypeLattice lattice_;
  ObjectGraph graph_;
  TypeId layout_ = 0, netlist_ = 0;
  InheritanceCostModel model_;
};

TEST_F(DeriveVersionTest, CreatesLinkedDescendant) {
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId v2 = graph_.Create(alu, 2, layout_,
                              lattice_.InstanceSize(layout_));
  auto result = DeriveVersion(graph_, v2, model_);
  ASSERT_NE(result.heir, kInvalidObject);
  EXPECT_EQ(graph_.NameOf(result.heir).ToString(), "ALU[3].layout");
  EXPECT_EQ(graph_.Ancestors(result.heir), std::vector<ObjectId>{v2});
  EXPECT_EQ(graph_.Descendants(v2), std::vector<ObjectId>{result.heir});
}

TEST_F(DeriveVersionTest, CostModelSplitsCopyAndReference) {
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId v1 = graph_.Create(alu, 1, layout_,
                              lattice_.InstanceSize(layout_));
  auto result = DeriveVersion(graph_, v1, model_);
  EXPECT_EQ(result.attributes_by_copy, 2);       // bbox + label
  EXPECT_EQ(result.attributes_by_reference, 1);  // geometry
  // Heir carries an instance-inheritance link to the parent.
  EXPECT_EQ(graph_.InheritanceSources(result.heir),
            std::vector<ObjectId>{v1});
  // By-reference storage is much smaller than the full instance.
  EXPECT_LT(graph_.object(result.heir).size_bytes,
            lattice_.InstanceSize(layout_));
}

TEST_F(DeriveVersionTest, CorrespondencesInheritedByDefault) {
  // The paper's example: ALU[2].layout corresponds to ALU[3].netlist, so a
  // new descendant of ALU[2].layout inherits that correspondence.
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId lay2 = graph_.Create(alu, 2, layout_,
                                lattice_.InstanceSize(layout_));
  ObjectId net3 = graph_.Create(alu, 3, netlist_, 60);
  graph_.Relate(lay2, net3, RelKind::kCorrespondence);

  auto result = DeriveVersion(graph_, lay2, model_);
  EXPECT_EQ(result.correspondences_inherited, 1);
  auto corr = graph_.Correspondents(result.heir);
  ASSERT_EQ(corr.size(), 1u);
  EXPECT_EQ(corr[0], net3);
  // net3 now corresponds to both layout versions.
  EXPECT_EQ(graph_.Correspondents(net3).size(), 2u);
}

TEST_F(DeriveVersionTest, ChainOfDerivationsIncrementsVersions) {
  FamilyId alu = graph_.NewFamily("ALU");
  ObjectId v = graph_.Create(alu, 1, layout_,
                             lattice_.InstanceSize(layout_));
  for (int i = 0; i < 3; ++i) v = DeriveVersion(graph_, v, model_).heir;
  EXPECT_EQ(graph_.NameOf(v).ToString(), "ALU[4].layout");
  EXPECT_EQ(graph_.LatestVersion(alu, layout_), v);
}

// ---------------------------------------------------------------------------
// CSR edge-arena golden digests.
//
// A deterministic 4000-step create/relate/unrelate/remove churn, digested
// at three checkpoints. The expected values were computed with the
// pre-CSR std::vector<Edge>-per-object implementation, so they pin down
// that the struct-of-arrays arena layout preserves object identity, edge
// order (append order with swap-with-last removal), and live accounting
// bit-for-bit across growth relocations and arena reuse.
// ---------------------------------------------------------------------------

namespace {

void MixU64(uint64_t& h, uint64_t v) {
  // FNV-1a over the value's bytes, low byte first.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
}

uint64_t GraphDigest(const ObjectGraph& graph) {
  uint64_t h = 1469598103934665603ULL;
  for (ObjectId id = 0; id < graph.size(); ++id) {
    if (!graph.IsLive(id)) continue;
    const DesignObject& o = graph.object(id);
    MixU64(h, id);
    MixU64(h, o.type);
    MixU64(h, o.size_bytes);
    for (const Edge e : graph.edges(id)) {
      MixU64(h, e.target);
      MixU64(h, (static_cast<uint64_t>(e.kind) << 8) |
                    static_cast<uint64_t>(e.dir));
    }
  }
  return h;
}

}  // namespace

TEST(EdgeArenaGoldenTest, ChurnDigestsMatchPreCsrImplementation) {
  TypeLattice lattice;
  const TypeId root =
      lattice.DefineType("root", kInvalidType, 48, {4.0, 2.0, 1.0, 0.5});
  const TypeId leaf =
      lattice.DefineType("leaf", root, 32, {3.0, 1.0, 0.7, 0.2});
  ObjectGraph graph(&lattice);
  Rng rng(20260809);
  const FamilyId fam = graph.NewFamily("golden");

  struct Op {
    ObjectId a = kInvalidObject;
    ObjectId b = kInvalidObject;
    RelKind kind = RelKind::kConfiguration;
  };
  std::vector<ObjectId> live;
  std::vector<Op> related;
  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.UniformDouble(0.0, 1.0);
    if (live.size() < 2 || roll < 0.45) {
      const ObjectId id = graph.Create(
          fam, static_cast<uint16_t>(step % 7),
          rng.Bernoulli(0.5) ? root : leaf,
          32 + static_cast<uint32_t>(rng.NextBelow(400)));
      live.push_back(id);
    } else if (roll < 0.85) {
      const ObjectId a = live[rng.NextBelow(live.size())];
      const ObjectId b = live[rng.NextBelow(live.size())];
      if (a != b) {
        const auto kind = static_cast<RelKind>(rng.NextBelow(4));
        graph.Relate(a, b, kind);
        related.push_back(Op{a, b, kind});
      }
    } else if (roll < 0.95 && !related.empty()) {
      const size_t i = rng.NextBelow(related.size());
      const Op op = related[i];
      if (graph.IsLive(op.a) && graph.IsLive(op.b)) {
        graph.Unrelate(op.a, op.b, op.kind);
      }
      related[i] = related.back();
      related.pop_back();
    } else {
      const size_t i = rng.NextBelow(live.size());
      graph.Remove(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
    if (step == 999) {
      EXPECT_EQ(GraphDigest(graph), 0x6db95d0b397325ceULL);
      EXPECT_EQ(graph.live_count(), 381u);
    } else if (step == 2499) {
      EXPECT_EQ(GraphDigest(graph), 0x2813c62681a88e8dULL);
      EXPECT_EQ(graph.live_count(), 949u);
    } else if (step == 3999) {
      EXPECT_EQ(GraphDigest(graph), 0xa7f62fc1b89df197ULL);
      EXPECT_EQ(graph.live_count(), 1571u);
    }
  }
}

}  // namespace
}  // namespace oodb::obj
