#include <vector>

#include "gtest/gtest.h"

#include "dyn/access_tracker.h"
#include "dyn/dyn_config.h"
#include "dyn/recluster_policy.h"
#include "dyn/reorganizer.h"
#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"
#include "storage/storage_manager.h"

namespace oodb {
namespace {

// ---------------------------------------------------------------- config

TEST(DynConfigTest, DisabledByDefaultWithEmptyLabelSuffix) {
  dyn::DynConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_EQ(cfg.LabelSuffix(), "");
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(DynConfigTest, LabelSuffixNamesThePolicy) {
  dyn::DynConfig cfg;
  cfg.policy = dyn::PolicyKind::kDstc;
  EXPECT_EQ(cfg.LabelSuffix(), "+DSTC");
  cfg.policy = dyn::PolicyKind::kOpcf;
  EXPECT_EQ(cfg.LabelSuffix(), "+OPCF");
}

TEST(DynConfigTest, ValidateNamesTheOffendingKnob) {
  const auto expect_error = [](dyn::DynConfig cfg, const char* needle) {
    const Status s = cfg.Validate();
    ASSERT_FALSE(s.ok()) << needle;
    EXPECT_NE(s.message().find(needle), std::string::npos) << s.ToString();
  };
  dyn::DynConfig bad;
  bad.observation_period = 0;
  expect_error(bad, "observation_period");
  bad = dyn::DynConfig{};
  bad.heat_decay = 1.0;  // 1.0 would never forget: tables grow unboundedly
  expect_error(bad, "heat_decay");
  bad = dyn::DynConfig{};
  bad.max_tracked_links = 0;
  expect_error(bad, "max_tracked_links");
  bad = dyn::DynConfig{};
  bad.trigger_threshold = 0.0;
  expect_error(bad, "trigger_threshold");
  bad = dyn::DynConfig{};
  bad.opcf_queue_watermark = -1.0;
  expect_error(bad, "opcf_queue_watermark");
  bad = dyn::DynConfig{};
  bad.opcf_batch = 0;
  expect_error(bad, "opcf_batch");
}

// --------------------------------------------------------- access tracker

dyn::DynConfig SmallTrackerConfig() {
  dyn::DynConfig cfg;
  cfg.policy = dyn::PolicyKind::kDstc;
  cfg.observation_period = 4;
  cfg.trigger_threshold = 3.0;
  cfg.max_unit_size = 2;
  cfg.max_tracked_objects = 64;
  cfg.max_tracked_links = 64;
  return cfg;
}

/// One transaction: root first (as TxnPipeline observes it), then reads.
void RunTxn(dyn::AccessTracker& t, obj::ObjectId root,
            std::initializer_list<obj::ObjectId> reads) {
  t.BeginTransaction(root);
  t.Observe(root);
  for (obj::ObjectId id : reads) t.Observe(id);
}

TEST(AccessTrackerTest, ConsolidationDueAfterObservationPeriod) {
  dyn::AccessTracker t(SmallTrackerConfig());
  for (int i = 0; i < 3; ++i) {
    RunTxn(t, 1, {2});
    EXPECT_FALSE(t.ConsolidationDue());
  }
  RunTxn(t, 1, {2});
  EXPECT_TRUE(t.ConsolidationDue());
  t.Consolidate();  // resets the period clock
  EXPECT_FALSE(t.ConsolidationDue());
}

TEST(AccessTrackerTest, ConsolidateBuildsUnitsFromHotCoAccess) {
  dyn::AccessTracker t(SmallTrackerConfig());
  // Root 1 reads {2, 3} four times: heat(1)=4, links 1-2 and 1-3 at 4.
  // Object 9 is touched once — too cold to anchor, never co-accessed
  // enough to matter.
  for (int i = 0; i < 4; ++i) RunTxn(t, 1, {2, 3});
  RunTxn(t, 9, {});

  const auto units = t.Consolidate();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].anchor, 1u);
  EXPECT_DOUBLE_EQ(units[0].heat, 4.0);
  // Equal link weights tie-break by ascending id; max_unit_size=2 caps
  // the member list.
  EXPECT_EQ(units[0].members, (std::vector<obj::ObjectId>{2, 3}));
}

TEST(AccessTrackerTest, AbsorbedMembersCannotAnchorASecondUnit) {
  auto cfg = SmallTrackerConfig();
  cfg.trigger_threshold = 2.0;
  dyn::AccessTracker t(cfg);
  // 1 and 2 co-access each other heavily; both clear the threshold, but
  // the hotter (1, via an extra solo txn) claims 2 as a member, so 2 must
  // not re-appear as an anchor.
  for (int i = 0; i < 3; ++i) RunTxn(t, 1, {2});
  RunTxn(t, 1, {});
  const auto units = t.Consolidate();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].anchor, 1u);
  EXPECT_EQ(units[0].members, (std::vector<obj::ObjectId>{2}));
}

TEST(AccessTrackerTest, DecayPrunesTablesAndSecondConsolidationIsQuiet) {
  dyn::AccessTracker t(SmallTrackerConfig());
  for (int i = 0; i < 4; ++i) RunTxn(t, 1, {2});
  EXPECT_EQ(t.tracked_objects(), 2u);
  EXPECT_EQ(t.tracked_links(), 1u);
  ASSERT_EQ(t.Consolidate().size(), 1u);
  // heat_decay=0.5: heat 4 -> 2 survives, link 4 -> 2 survives.
  EXPECT_EQ(t.tracked_objects(), 2u);
  EXPECT_EQ(t.tracked_links(), 1u);
  // With no fresh accesses the residue decays below the 0.5 floor and the
  // tables empty out (2 -> 1 -> 0.5 -> 0.25; the floor is strict, so the
  // exact-0.5 window still survives).
  t.Consolidate();
  t.Consolidate();
  t.Consolidate();
  EXPECT_EQ(t.tracked_objects(), 0u);
  EXPECT_EQ(t.tracked_links(), 0u);
  EXPECT_TRUE(t.Consolidate().empty());
}

TEST(AccessTrackerTest, TableCapsDropArrivalsInsteadOfEvicting) {
  auto cfg = SmallTrackerConfig();
  cfg.max_tracked_objects = 2;
  dyn::AccessTracker t(cfg);
  RunTxn(t, 1, {2, 3, 4});  // 3 and 4 arrive after the table is full
  EXPECT_EQ(t.tracked_objects(), 2u);
  EXPECT_EQ(t.dropped_objects(), 2u);
  // Tracked objects keep accumulating heat normally.
  RunTxn(t, 1, {2});
  EXPECT_EQ(t.tracked_objects(), 2u);
  EXPECT_EQ(t.observed_refs(), 6u);
}

TEST(AccessTrackerTest, SameSequenceYieldsIdenticalUnits) {
  dyn::AccessTracker a(SmallTrackerConfig());
  dyn::AccessTracker b(SmallTrackerConfig());
  for (dyn::AccessTracker* t : {&a, &b}) {
    for (int i = 0; i < 4; ++i) RunTxn(*t, 5, {7, 6, 8});
    for (int i = 0; i < 4; ++i) RunTxn(*t, 2, {3});
  }
  const auto ua = a.Consolidate();
  const auto ub = b.Consolidate();
  ASSERT_EQ(ua.size(), ub.size());
  for (size_t i = 0; i < ua.size(); ++i) {
    EXPECT_EQ(ua[i].anchor, ub[i].anchor);
    EXPECT_EQ(ua[i].heat, ub[i].heat);
    EXPECT_EQ(ua[i].members, ub[i].members);
  }
}

// ------------------------------------------------------ recluster policies

dyn::ClusterUnit Unit(obj::ObjectId anchor, double heat) {
  dyn::ClusterUnit u;
  u.anchor = anchor;
  u.heat = heat;
  u.members = {anchor + 100};
  return u;
}

TEST(ReclusterPolicyTest, FactoryMapsKindToPolicy) {
  dyn::DynConfig cfg;
  EXPECT_EQ(dyn::MakeReclusterPolicy(cfg), nullptr);
  cfg.policy = dyn::PolicyKind::kDstc;
  EXPECT_STREQ(dyn::MakeReclusterPolicy(cfg)->name(), "DSTC");
  cfg.policy = dyn::PolicyKind::kOpcf;
  EXPECT_STREQ(dyn::MakeReclusterPolicy(cfg)->name(), "OPCF");
}

TEST(ReclusterPolicyTest, DstcDrainsEverythingHottestFirstImmediately) {
  dyn::DstcPolicy p;
  p.Enqueue({Unit(10, 1.0), Unit(11, 5.0)}, /*now=*/0.0);
  p.Enqueue({Unit(12, 3.0)}, /*now=*/1.0);
  EXPECT_EQ(p.pending(), 3u);

  // Queue depth is irrelevant to DSTC: it never defers.
  const auto out = p.Drain(/*now=*/2.0, /*queue_depth=*/99.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].anchor, 11u);
  EXPECT_EQ(out[1].anchor, 12u);
  EXPECT_EQ(out[2].anchor, 10u);
  EXPECT_EQ(p.pending(), 0u);
  EXPECT_EQ(p.deferral_events(), 0u);
  EXPECT_DOUBLE_EQ(p.deferral_time_s(), 0.0);
}

TEST(ReclusterPolicyTest, EnqueueTieBreaksOnAnchorId) {
  dyn::DstcPolicy p;
  p.Enqueue({Unit(7, 2.0)}, 0.0);
  p.Enqueue({Unit(3, 2.0)}, 0.0);  // same heat, later arrival, smaller id
  const auto out = p.Drain(0.0, 0.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].anchor, 3u);
  EXPECT_EQ(out[1].anchor, 7u);
}

TEST(ReclusterPolicyTest, OpcfDefersAboveWatermarkAndAccountsTheWait) {
  dyn::OpcfPolicy p(/*queue_watermark=*/1.0, /*batch=*/2);
  p.Enqueue({Unit(1, 4.0), Unit(2, 3.0), Unit(3, 2.0)}, /*now=*/0.0);

  // Deep queue: nothing drains, one deferral window opens at t=10.
  EXPECT_TRUE(p.Drain(/*now=*/10.0, /*queue_depth=*/3.0).empty());
  EXPECT_EQ(p.deferral_events(), 1u);
  // Still deep: the window stays open — no second event.
  EXPECT_TRUE(p.Drain(20.0, 2.0).empty());
  EXPECT_EQ(p.deferral_events(), 1u);
  EXPECT_EQ(p.pending(), 3u);

  // Slack at t=30: the window closes (20 s deferred) and a prioritised
  // batch of 2 comes out.
  const auto batch = p.Drain(30.0, 0.5);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].anchor, 1u);
  EXPECT_EQ(batch[1].anchor, 2u);
  EXPECT_DOUBLE_EQ(p.deferral_time_s(), 20.0);
  EXPECT_EQ(p.pending(), 1u);

  // Remainder drains on the next opportunity.
  EXPECT_EQ(p.Drain(31.0, 0.0).size(), 1u);
  EXPECT_EQ(p.pending(), 0u);
  EXPECT_EQ(p.deferral_events(), 1u);
}

TEST(ReclusterPolicyTest, OpcfEmptyQueueNeverDefers) {
  dyn::OpcfPolicy p(1.0, 2);
  // A deep queue with nothing pending is not a deferral: there is no work
  // being delayed.
  EXPECT_TRUE(p.Drain(5.0, 10.0).empty());
  EXPECT_EQ(p.deferral_events(), 0u);
  EXPECT_DOUBLE_EQ(p.deferral_time_s(), 0.0);
}

TEST(ReclusterPolicyTest, OpcfAtExactWatermarkDrains) {
  dyn::OpcfPolicy p(2.0, 4);
  p.Enqueue({Unit(1, 1.0)}, 0.0);
  // Deferral requires depth strictly above the watermark.
  EXPECT_EQ(p.Drain(1.0, 2.0).size(), 1u);
  EXPECT_EQ(p.deferral_events(), 0u);
}

// ------------------------------------------------------------ reorganizer

class ReorganizerTest : public ::testing::Test {
 protected:
  ReorganizerTest() : graph_(&lattice_), store_(100) {
    t_ = lattice_.DefineType("t", obj::kInvalidType, 0, {});
    fam_ = graph_.NewFamily("f");
  }

  obj::ObjectId Make(store::PageId page) {
    const obj::ObjectId id = graph_.Create(fam_, next_ver_++, t_, 30);
    if (page != store::kInvalidPage) {
      EXPECT_TRUE(store_.Place(id, 30, page).ok());
    }
    return id;
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager store_;
  obj::TypeId t_ = obj::kInvalidType;
  obj::FamilyId fam_ = obj::kInvalidFamily;
  uint32_t next_ver_ = 0;
};

TEST_F(ReorganizerTest, PacksMembersOntoAnchorPageThenOverflows) {
  const store::PageId p0 = store_.AllocatePage();
  const store::PageId p1 = store_.AllocatePage();
  const obj::ObjectId anchor = Make(p0);     // p0: 60/100 with `near`
  const obj::ObjectId near = Make(p0);       // already co-located
  const obj::ObjectId far1 = Make(p1);       // p1: 90/100
  const obj::ObjectId far2 = Make(p1);
  const obj::ObjectId dead = Make(p1);
  graph_.Remove(dead);
  ASSERT_TRUE(store_.Erase(dead).ok());
  const obj::ObjectId unplaced = Make(store::kInvalidPage);

  dyn::ClusterUnit unit;
  unit.anchor = anchor;
  unit.heat = 5.0;
  unit.members = {near, far1, dead, unplaced, far2};

  dyn::Reorganizer reorg(&graph_, &store_);
  const dyn::ReorgResult r = reorg.Reorganize(unit, /*max_moves=*/8);

  // far1 fits next to the anchor (60+30), far2 would overflow p0
  // (90+30 > 100) and spills onto a fresh page; near/dead/unplaced are
  // skipped without consuming the move budget.
  ASSERT_EQ(r.moves.size(), 2u);
  EXPECT_EQ(r.moves[0].object, far1);
  EXPECT_EQ(r.moves[0].from, p1);
  EXPECT_EQ(r.moves[0].to, p0);
  EXPECT_EQ(r.moves[1].object, far2);
  const store::PageId overflow = r.moves[1].to;
  EXPECT_NE(overflow, p0);
  EXPECT_NE(overflow, p1);
  EXPECT_EQ(store_.PageOf(far1), p0);
  EXPECT_EQ(store_.PageOf(far2), overflow);
  EXPECT_EQ(store_.PageOf(near), p0);  // untouched

  // Touched pages: both sources and both destinations, sorted + deduped.
  EXPECT_EQ(r.pages_touched,
            (std::vector<store::PageId>{p0, p1, overflow}));
  EXPECT_EQ(reorg.objects_moved(), 2u);
  EXPECT_EQ(reorg.units_executed(), 1u);
}

TEST_F(ReorganizerTest, MoveBudgetTruncatesTheUnit) {
  const store::PageId p0 = store_.AllocatePage();
  const store::PageId p1 = store_.AllocatePage();
  const obj::ObjectId anchor = Make(p0);
  const obj::ObjectId m1 = Make(p1);
  const obj::ObjectId m2 = Make(p1);

  dyn::ClusterUnit unit;
  unit.anchor = anchor;
  unit.members = {m1, m2};
  dyn::Reorganizer reorg(&graph_, &store_);
  const dyn::ReorgResult r = reorg.Reorganize(unit, /*max_moves=*/1);
  ASSERT_EQ(r.moves.size(), 1u);
  EXPECT_EQ(r.moves[0].object, m1);
  EXPECT_EQ(store_.PageOf(m2), p1);  // budget exhausted before m2
}

TEST_F(ReorganizerTest, DeadOrUnplacedAnchorIsANoOp) {
  const store::PageId p0 = store_.AllocatePage();
  const obj::ObjectId anchor = Make(p0);
  const obj::ObjectId member = Make(p0);
  graph_.Remove(anchor);
  ASSERT_TRUE(store_.Erase(anchor).ok());

  dyn::ClusterUnit unit;
  unit.anchor = anchor;
  unit.members = {member};
  dyn::Reorganizer reorg(&graph_, &store_);
  const dyn::ReorgResult r = reorg.Reorganize(unit, 8);
  EXPECT_TRUE(r.moves.empty());
  EXPECT_TRUE(r.pages_touched.empty());
  EXPECT_EQ(reorg.units_executed(), 0u);
}

}  // namespace
}  // namespace oodb
