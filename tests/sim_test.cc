#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace oodb::sim {
namespace {

// ---------------------------------------------------------------- kernel

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, HandlersMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Schedule(1.0, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(2.5), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepLimitsProcessing) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.Schedule(i, [&] { ++fired; });
  EXPECT_EQ(sim.Step(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_FALSE(sim.Empty());
}

TEST(SimulatorTest, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(1.0, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

// ---------------------------------------------------------------- process

Task RecordAfterDelay(Simulator& sim, double delay, std::vector<double>& log) {
  co_await Delay(sim, delay);
  log.push_back(sim.now());
}

TEST(ProcessTest, DelayResumesAtRightTime) {
  Simulator sim;
  std::vector<double> log;
  Spawn(RecordAfterDelay(sim, 2.5, log));
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 2.5);
}

Task TwoPhase(Simulator& sim, std::vector<double>& log) {
  co_await Delay(sim, 1.0);
  log.push_back(sim.now());
  co_await Delay(sim, 2.0);
  log.push_back(sim.now());
}

TEST(ProcessTest, SequentialAwaitsAccumulate) {
  Simulator sim;
  std::vector<double> log;
  Spawn(TwoPhase(sim, log));
  sim.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1], 3.0);
}

Task Inner(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await Delay(sim, 1.0);
  log.push_back(2);
}

Task Outer(Simulator& sim, std::vector<int>& log) {
  log.push_back(0);
  co_await Inner(sim, log);
  log.push_back(3);
}

TEST(ProcessTest, NestedTasksResumeParent) {
  Simulator sim;
  std::vector<int> log;
  Spawn(Outer(sim, log));
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ProcessTest, ZeroDelayDoesNotSuspend) {
  Simulator sim;
  std::vector<double> log;
  Spawn(RecordAfterDelay(sim, 0.0, log));
  // Spawn runs eagerly to the first real suspension; zero delay is ready.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 0.0);
}

// ---------------------------------------------------------------- resource

Task UseResource(Resource& res, double service, std::vector<double>& done,
                 Simulator& sim) {
  co_await res.Use(service);
  done.push_back(sim.now());
}

TEST(ResourceTest, SingleServerSerialisesRequests) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  Spawn(UseResource(res, 2.0, done, sim));
  Spawn(UseResource(res, 3.0, done, sim));
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 5.0);  // waited for the first
  EXPECT_EQ(res.completions(), 2u);
}

TEST(ResourceTest, TwoServersRunInParallel) {
  Simulator sim;
  Resource res(sim, "disks", 2);
  std::vector<double> done;
  Spawn(UseResource(res, 2.0, done, sim));
  Spawn(UseResource(res, 3.0, done, sim));
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 3.0);  // no queueing
}

TEST(ResourceTest, FcfsOrderAmongWaiters) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) Spawn(UseResource(res, 1.0, done, sim));
  sim.Run();
  EXPECT_EQ(done, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(ResourceTest, ResidenceTimeIncludesQueueing) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  Spawn(UseResource(res, 2.0, done, sim));
  Spawn(UseResource(res, 2.0, done, sim));
  sim.Run();
  // First: 2s service. Second: 2s wait + 2s service.
  EXPECT_DOUBLE_EQ(res.residence_time().Mean(), 3.0);
  EXPECT_DOUBLE_EQ(res.residence_time().max(), 4.0);
}

TEST(ResourceTest, UtilizationOfAlwaysBusyServerIsOne) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  for (int i = 0; i < 10; ++i) Spawn(UseResource(res, 1.0, done, sim));
  sim.Run();
  EXPECT_NEAR(res.Utilization(), 1.0, 1e-9);
}

TEST(ResourceTest, DetachedUseRunsCallback) {
  Simulator sim;
  Resource res(sim, "disk", 1);
  bool completed = false;
  double completion_time = 0;
  res.UseDetached(1.5, [&] {
    completed = true;
    completion_time = sim.now();
  });
  sim.Run();
  EXPECT_TRUE(completed);
  EXPECT_DOUBLE_EQ(completion_time, 1.5);
  EXPECT_EQ(res.completions(), 1u);
}

TEST(ResourceTest, DetachedAndAwaitedShareTheQueue) {
  Simulator sim;
  Resource res(sim, "disk", 1);
  std::vector<double> done;
  res.UseDetached(2.0);
  Spawn(UseResource(res, 1.0, done, sim));
  sim.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 3.0);  // waited behind the detached request
}

// Closed-network sanity: N customers cycling a single server with think
// time have response time bounded below by service and throughput bounded
// by the server rate (a coarse operational-law check).
Task ClosedLoopUser(Simulator& sim, Resource& server, int cycles,
                    int& completed) {
  for (int i = 0; i < cycles; ++i) {
    co_await Delay(sim, 1.0);        // think
    co_await server.Use(0.5);        // service
    ++completed;
  }
}

TEST(ResourceTest, ClosedNetworkThroughputBoundedByServer) {
  Simulator sim;
  Resource server(sim, "cpu", 1);
  int completed = 0;
  for (int u = 0; u < 8; ++u) {
    Spawn(ClosedLoopUser(sim, server, 10, completed));
  }
  sim.Run();
  EXPECT_EQ(completed, 80);
  // 80 jobs x 0.5s service on one server -> at least 40s of busy time.
  EXPECT_GE(sim.now(), 40.0);
}

}  // namespace
}  // namespace oodb::sim
