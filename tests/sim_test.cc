#include <algorithm>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "sim/event_calendar.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace oodb::sim {
namespace {

// ---------------------------------------------------------------- kernel

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, HandlersMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Schedule(1.0, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(2.5), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepLimitsProcessing) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.Schedule(i, [&] { ++fired; });
  EXPECT_EQ(sim.Step(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_FALSE(sim.Empty());
}

TEST(SimulatorTest, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(1.0, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

// --------------------------------------------------------- event calendar

TEST(EventCalendarTest, PopsInTimeThenSeqOrder) {
  EventCalendar cal;
  Rng rng(7);
  std::vector<EventCalendar::Entry> expect;
  for (uint32_t i = 0; i < 500; ++i) {
    // Quantised times force collisions, exercising the seq tie-break.
    const double t = 0.5 * static_cast<double>(rng.NextBelow(100));
    cal.Push(t, i, i);
    expect.push_back(EventCalendar::Entry{t, i, i});
  }
  std::sort(expect.begin(), expect.end(),
            [](const EventCalendar::Entry& a, const EventCalendar::Entry& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  for (const EventCalendar::Entry& want : expect) {
    ASSERT_FALSE(cal.empty());
    EXPECT_EQ(cal.Min().payload, want.payload);
    const EventCalendar::Entry got = cal.PopMin();
    EXPECT_EQ(got.time, want.time);
    EXPECT_EQ(got.seq, want.seq);
    EXPECT_EQ(got.payload, want.payload);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventCalendarTest, EarlierPushRewindsCursor) {
  EventCalendar cal;
  cal.Push(1000.0, 0, 0);
  EXPECT_EQ(cal.Min().payload, 0u);  // cursor now points far ahead
  cal.Push(1.0, 1, 1);               // lands behind the cursor: rewind
  EXPECT_EQ(cal.Min().payload, 1u);
  EXPECT_EQ(cal.PopMin().payload, 1u);
  EXPECT_EQ(cal.PopMin().payload, 0u);
  EXPECT_TRUE(cal.empty());
}

TEST(EventCalendarTest, GrowsAndShrinksWithPopulation) {
  EventCalendar cal;
  const size_t cold = cal.bucket_count();
  for (uint32_t i = 0; i < 4096; ++i) {
    cal.Push(0.1 * static_cast<double>(i % 97), i, i);
  }
  EXPECT_GT(cal.bucket_count(), cold);
  double prev_time = -1.0;
  uint64_t prev_seq = 0;
  while (!cal.empty()) {
    const EventCalendar::Entry e = cal.PopMin();
    ASSERT_TRUE(e.time > prev_time ||
                (e.time == prev_time && e.seq > prev_seq));
    prev_time = e.time;
    prev_seq = e.seq;
  }
  EXPECT_EQ(cal.bucket_count(), cold);  // shrank back once drained
}

TEST(EventCalendarTest, SparseFarFutureEventsAreFound) {
  // Events many laps ahead of the cursor: exercises the direct-search
  // fallback after a fruitless full-lap scan.
  EventCalendar cal;
  cal.Push(0.5, 0, 0);
  cal.Push(1e7, 1, 1);
  cal.Push(1e9, 2, 2);
  EXPECT_EQ(cal.PopMin().payload, 0u);
  EXPECT_EQ(cal.PopMin().payload, 1u);
  EXPECT_EQ(cal.PopMin().payload, 2u);
}

// The calendar-backed Simulator must dispatch exactly like the textbook
// priority-queue-of-(time, seq) kernel it replaced: same event order, same
// clock values, same counters. Both systems run one deterministic
// pre-generated plan: event `tag` spawns children with delays
// `child_delays[tag]`, tags handed out in scheduling order.
struct RefEvent {
  double time;
  uint64_t seq;
  int tag;
  bool operator>(const RefEvent& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

TEST(EventCalendarTest, SimulatorMatchesReferencePriorityQueue) {
  constexpr int kMaxEvents = 5000;
  constexpr int kInitial = 64;
  Rng rng(20260809);
  std::vector<std::vector<double>> child_delays(kMaxEvents);
  for (auto& delays : child_delays) {
    const size_t n = rng.NextBelow(3);
    for (size_t i = 0; i < n; ++i) {
      // Quantised delays force equal-time collisions; the occasional long
      // delay forces calendar resizes and sparse-tail searches.
      double d = 0.25 * static_cast<double>(1 + rng.NextBelow(16));
      if (rng.NextBelow(20) == 0) d += 500.0;
      delays.push_back(d);
    }
  }
  std::vector<double> initial_times;
  for (int i = 0; i < kInitial; ++i) {
    initial_times.push_back(0.5 * static_cast<double>(rng.NextBelow(40)));
  }

  // System under test: the Simulator and its calendar queue.
  std::vector<std::pair<double, int>> sim_order;
  Simulator sim;
  int next_tag = 0;
  std::function<void(int)> fire = [&](int tag) {
    sim_order.emplace_back(sim.now(), tag);
    for (double d : child_delays[tag]) {
      if (next_tag >= kMaxEvents) break;
      const int child = next_tag++;
      sim.Schedule(d, [&fire, child] { fire(child); });
    }
  };
  for (double t : initial_times) {
    const int tag = next_tag++;
    sim.ScheduleAt(t, [&fire, tag] { fire(tag); });
  }
  sim.Run();

  // Reference: plain min-heap on (time, seq).
  std::vector<std::pair<double, int>> ref_order;
  std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<RefEvent>>
      pq;
  uint64_t ref_seq = 0;
  uint64_t ref_processed = 0;
  int ref_next_tag = 0;
  for (double t : initial_times) {
    pq.push(RefEvent{t, ref_seq++, ref_next_tag++});
  }
  while (!pq.empty()) {
    const RefEvent e = pq.top();
    pq.pop();
    ++ref_processed;
    ref_order.emplace_back(e.time, e.tag);
    for (double d : child_delays[e.tag]) {
      if (ref_next_tag >= kMaxEvents) break;
      pq.push(RefEvent{e.time + d, ref_seq++, ref_next_tag++});
    }
  }

  ASSERT_EQ(sim_order.size(), ref_order.size());
  for (size_t i = 0; i < ref_order.size(); ++i) {
    EXPECT_EQ(sim_order[i].first, ref_order[i].first) << "event " << i;
    EXPECT_EQ(sim_order[i].second, ref_order[i].second) << "event " << i;
  }
  EXPECT_EQ(sim.events_processed(), ref_processed);
  EXPECT_EQ(sim.events_scheduled(), ref_seq);
}

// --------------------------------------------------------- small callback

TEST(SmallCallbackTest, InlineLambdaInvokes) {
  int calls = 0;
  SmallCallback cb([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(calls, 1);
}

TEST(SmallCallbackTest, MoveTransfersOwnership) {
  int calls = 0;
  SmallCallback a([&calls] { ++calls; });
  SmallCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
}

TEST(SmallCallbackTest, LargeCaptureFallsBackToHeap) {
  // Capture larger than the inline buffer: must still work (heap path).
  struct Big {
    char fill[128] = {};
    int* counter = nullptr;
  };
  int calls = 0;
  Big big;
  big.counter = &calls;
  SmallCallback cb([big] { ++*big.counter; });
  SmallCallback moved = std::move(cb);
  moved();
  EXPECT_EQ(calls, 1);
}

TEST(SmallCallbackTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    SmallCallback cb([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // callback keeps the capture alive
    SmallCallback moved = std::move(cb);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // destroyed with the callback, once
}

// ---------------------------------------------------------------- process

Task RecordAfterDelay(Simulator& sim, double delay, std::vector<double>& log) {
  co_await Delay(sim, delay);
  log.push_back(sim.now());
}

TEST(ProcessTest, DelayResumesAtRightTime) {
  Simulator sim;
  std::vector<double> log;
  Spawn(RecordAfterDelay(sim, 2.5, log));
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 2.5);
}

Task TwoPhase(Simulator& sim, std::vector<double>& log) {
  co_await Delay(sim, 1.0);
  log.push_back(sim.now());
  co_await Delay(sim, 2.0);
  log.push_back(sim.now());
}

TEST(ProcessTest, SequentialAwaitsAccumulate) {
  Simulator sim;
  std::vector<double> log;
  Spawn(TwoPhase(sim, log));
  sim.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1], 3.0);
}

Task Inner(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await Delay(sim, 1.0);
  log.push_back(2);
}

Task Outer(Simulator& sim, std::vector<int>& log) {
  log.push_back(0);
  co_await Inner(sim, log);
  log.push_back(3);
}

TEST(ProcessTest, NestedTasksResumeParent) {
  Simulator sim;
  std::vector<int> log;
  Spawn(Outer(sim, log));
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ProcessTest, ZeroDelayDoesNotSuspend) {
  Simulator sim;
  std::vector<double> log;
  Spawn(RecordAfterDelay(sim, 0.0, log));
  // Spawn runs eagerly to the first real suspension; zero delay is ready.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 0.0);
}

// ---------------------------------------------------------------- resource

Task UseResource(Resource& res, double service, std::vector<double>& done,
                 Simulator& sim) {
  co_await res.Use(service);
  done.push_back(sim.now());
}

TEST(ResourceTest, SingleServerSerialisesRequests) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  Spawn(UseResource(res, 2.0, done, sim));
  Spawn(UseResource(res, 3.0, done, sim));
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 5.0);  // waited for the first
  EXPECT_EQ(res.completions(), 2u);
}

TEST(ResourceTest, TwoServersRunInParallel) {
  Simulator sim;
  Resource res(sim, "disks", 2);
  std::vector<double> done;
  Spawn(UseResource(res, 2.0, done, sim));
  Spawn(UseResource(res, 3.0, done, sim));
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 3.0);  // no queueing
}

TEST(ResourceTest, FcfsOrderAmongWaiters) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) Spawn(UseResource(res, 1.0, done, sim));
  sim.Run();
  EXPECT_EQ(done, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

Task ArriveThenUse(Simulator& sim, Resource& res, double arrival,
                   double service, int tag, std::vector<int>& done_order,
                   std::vector<double>& done_time) {
  co_await Delay(sim, arrival);
  co_await res.Use(service);
  done_order.push_back(tag);
  done_time.push_back(sim.now());
}

TEST(ResourceTest, DeepQueueStaysFcfsWithNoStarvation) {
  // 256 staggered arrivals with wildly mixed service times against one
  // server. FCFS means completion order must equal arrival order exactly
  // — a short job arriving late can never overtake a long job ahead of it,
  // and no waiter starves no matter how deep the queue grows. Arrival
  // times are quantised so many requests tie, exercising the calendar
  // queue's (time, seq) tie-break through Enqueue.
  constexpr int kJobs = 256;
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<int> done_order;
  std::vector<double> done_time;
  std::vector<double> arrivals(kJobs), services(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    arrivals[static_cast<size_t>(i)] = 0.25 * (i / 8);  // 8-way arrival ties
    services[static_cast<size_t>(i)] =
        0.125 * static_cast<double>(1 + (i * 7) % 11);
    Spawn(ArriveThenUse(sim, res, arrivals[static_cast<size_t>(i)],
                        services[static_cast<size_t>(i)], i, done_order,
                        done_time));
  }
  sim.Run();

  ASSERT_EQ(done_order.size(), static_cast<size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_EQ(done_order[static_cast<size_t>(i)], i)
        << "completion order diverged from arrival order at position " << i;
  }
  // Exact FCFS replay: start_i = max(arrival_i, done_{i-1}).
  double prev_done = 0.0;
  for (int i = 0; i < kJobs; ++i) {
    const double start = std::max(arrivals[static_cast<size_t>(i)], prev_done);
    prev_done = start + services[static_cast<size_t>(i)];
    EXPECT_DOUBLE_EQ(done_time[static_cast<size_t>(i)], prev_done)
        << "job " << i;
  }
  EXPECT_EQ(res.completions(), static_cast<uint64_t>(kJobs));
  // The deepest observed queue covers most of the population: the tail
  // jobs really did wait behind hundreds of earlier arrivals.
  EXPECT_GT(res.MeanQueueLength(), 1.0);
}

TEST(ResourceTest, ResidenceTimeIncludesQueueing) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  Spawn(UseResource(res, 2.0, done, sim));
  Spawn(UseResource(res, 2.0, done, sim));
  sim.Run();
  // First: 2s service. Second: 2s wait + 2s service.
  EXPECT_DOUBLE_EQ(res.residence_time().Mean(), 3.0);
  EXPECT_DOUBLE_EQ(res.residence_time().max(), 4.0);
}

TEST(ResourceTest, UtilizationOfAlwaysBusyServerIsOne) {
  Simulator sim;
  Resource res(sim, "cpu", 1);
  std::vector<double> done;
  for (int i = 0; i < 10; ++i) Spawn(UseResource(res, 1.0, done, sim));
  sim.Run();
  EXPECT_NEAR(res.Utilization(), 1.0, 1e-9);
}

TEST(ResourceTest, DetachedUseRunsCallback) {
  Simulator sim;
  Resource res(sim, "disk", 1);
  bool completed = false;
  double completion_time = 0;
  res.UseDetached(1.5, [&] {
    completed = true;
    completion_time = sim.now();
  });
  sim.Run();
  EXPECT_TRUE(completed);
  EXPECT_DOUBLE_EQ(completion_time, 1.5);
  EXPECT_EQ(res.completions(), 1u);
}

TEST(ResourceTest, DetachedAndAwaitedShareTheQueue) {
  Simulator sim;
  Resource res(sim, "disk", 1);
  std::vector<double> done;
  res.UseDetached(2.0);
  Spawn(UseResource(res, 1.0, done, sim));
  sim.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 3.0);  // waited behind the detached request
}

// Closed-network sanity: N customers cycling a single server with think
// time have response time bounded below by service and throughput bounded
// by the server rate (a coarse operational-law check).
Task ClosedLoopUser(Simulator& sim, Resource& server, int cycles,
                    int& completed) {
  for (int i = 0; i < cycles; ++i) {
    co_await Delay(sim, 1.0);        // think
    co_await server.Use(0.5);        // service
    ++completed;
  }
}

TEST(ResourceTest, ClosedNetworkThroughputBoundedByServer) {
  Simulator sim;
  Resource server(sim, "cpu", 1);
  int completed = 0;
  for (int u = 0; u < 8; ++u) {
    Spawn(ClosedLoopUser(sim, server, 10, completed));
  }
  sim.Run();
  EXPECT_EQ(completed, 80);
  // 80 jobs x 0.5s service on one server -> at least 40s of busy time.
  EXPECT_GE(sim.now(), 40.0);
}

}  // namespace
}  // namespace oodb::sim
