#include "gtest/gtest.h"

#include "core/engineering_db.h"
#include "core/experiment.h"
#include "core/model_config.h"

namespace oodb::core {
namespace {

ModelConfig SmallConfig() {
  ModelConfig cfg = TestConfig();
  cfg.measured_transactions = 250;
  cfg.warmup_transactions = 40;
  return cfg;
}

TEST(EngineeringDbModelTest, RunCompletesAndCounts) {
  ModelConfig cfg = SmallConfig();
  EngineeringDbModel model(cfg);
  RunResult r = model.Run();
  EXPECT_EQ(r.transactions,
            static_cast<uint64_t>(cfg.measured_transactions));
  EXPECT_GT(r.response_time.Mean(), 0.0);
  EXPECT_GT(r.logical_reads, 0u);
  EXPECT_GT(r.logical_writes, 0u);
  EXPECT_GE(r.buffer_hit_ratio, 0.0);
  EXPECT_LE(r.buffer_hit_ratio, 1.0);
  EXPECT_GT(r.db_pages, 100u);
  EXPECT_GT(r.db_objects, 1000u);
  EXPECT_GT(r.sim_duration_s, 0.0);
}

TEST(EngineeringDbModelTest, DeterministicForEqualSeeds) {
  ModelConfig cfg = SmallConfig();
  RunResult a = RunCell(cfg);
  RunResult b = RunCell(cfg);
  EXPECT_DOUBLE_EQ(a.response_time.Mean(), b.response_time.Mean());
  EXPECT_EQ(a.logical_reads, b.logical_reads);
  EXPECT_EQ(a.data_reads, b.data_reads);
}

TEST(EngineeringDbModelTest, DifferentSeedsDiffer) {
  ModelConfig cfg = SmallConfig();
  RunResult a = RunCell(cfg);
  cfg.seed = 999;
  RunResult b = RunCell(cfg);
  EXPECT_NE(a.logical_reads, b.logical_reads);
}

TEST(EngineeringDbModelTest, AchievedRatioTracksTarget) {
  for (double target : {5.0, 100.0}) {
    ModelConfig cfg = SmallConfig();
    cfg.measured_transactions = 600;
    cfg.workload.read_write_ratio = target;
    RunResult r = RunCell(cfg);
    EXPECT_NEAR(r.achieved_rw_ratio, target, target * 0.35)
        << "target " << target;
  }
}

TEST(EngineeringDbModelTest, ResponseSplitsCoverAllTransactions) {
  ModelConfig cfg = SmallConfig();
  RunResult r = RunCell(cfg);
  EXPECT_EQ(r.read_response.count() + r.write_response.count(),
            r.response_time.count());
}

TEST(EngineeringDbModelTest, HigherDensityCostsMoreWithoutClustering) {
  ModelConfig low = SmallConfig();
  low.workload.density = workload::StructureDensity::kLow3;
  ModelConfig high = SmallConfig();
  high.workload.density = workload::StructureDensity::kHigh10;
  const double rt_low = RunCell(low).response_time.Mean();
  const double rt_high = RunCell(high).response_time.Mean();
  EXPECT_GT(rt_high, rt_low);
}

// The paper's headline (Fig 5.1/5.4): at high density and R/W=100,
// run-time clustering improves response time by a factor of ~3
// ("by 200%"). At small scale we require at least 1.8x.
TEST(EngineeringDbModelTest, ClusteringWinsBigAtHighDensityHighRatio) {
  ModelConfig base = SmallConfig();
  base.workload.density = workload::StructureDensity::kHigh10;
  base.workload.read_write_ratio = 100;

  ModelConfig none = base;
  none.clustering.pool = cluster::CandidatePool::kNoClustering;
  ModelConfig clustered = base;
  clustered.clustering.pool = cluster::CandidatePool::kWithinDb;

  const double rt_none = RunCell(none).response_time.Mean();
  const double rt_clustered = RunCell(clustered).response_time.Mean();
  EXPECT_GT(rt_none, 1.8 * rt_clustered)
      << "none=" << rt_none << " clustered=" << rt_clustered;
}

// Fig 5.5 mechanism: clustering reduces transaction-logging I/O because
// co-located updates share before-imaged pages.
TEST(EngineeringDbModelTest, ClusteringReducesLogBeforeImages) {
  ModelConfig base = SmallConfig();
  base.workload.density = workload::StructureDensity::kMed5;
  base.workload.read_write_ratio = 5;
  base.measured_transactions = 500;

  ModelConfig none = base;
  none.clustering.pool = cluster::CandidatePool::kNoClustering;
  ModelConfig clustered = base;
  clustered.clustering.pool = cluster::CandidatePool::kWithinDb;
  clustered.clustering.split = cluster::SplitPolicy::kLinearGreedy;

  RunResult r_none = RunCell(none);
  RunResult r_clustered = RunCell(clustered);
  // Normalise per logical write.
  const double bi_none = static_cast<double>(r_none.log_before_images) /
                         static_cast<double>(r_none.logical_writes);
  const double bi_clustered =
      static_cast<double>(r_clustered.log_before_images) /
      static_cast<double>(r_clustered.logical_writes);
  EXPECT_LT(bi_clustered, bi_none);
}

// Buffering shape (Fig 5.11): context-sensitive replacement with prefetch
// within database beats LRU with no prefetching.
TEST(EngineeringDbModelTest, ContextPrefetchBeatsLruNoPrefetch) {
  ModelConfig base = SmallConfig();
  base.workload.density = workload::StructureDensity::kHigh10;
  base.workload.read_write_ratio = 100;
  base.clustering.pool = cluster::CandidatePool::kWithinDb;
  base.clustering.split = cluster::SplitPolicy::kLinearGreedy;

  ModelConfig lru = base;
  lru.replacement = buffer::ReplacementPolicy::kLru;
  lru.prefetch = buffer::PrefetchPolicy::kNone;
  ModelConfig ctx = base;
  ctx.replacement = buffer::ReplacementPolicy::kContextSensitive;
  ctx.prefetch = buffer::PrefetchPolicy::kWithinDb;

  const double rt_lru = RunCell(lru).response_time.Mean();
  const double rt_ctx = RunCell(ctx).response_time.Mean();
  EXPECT_LT(rt_ctx, rt_lru);
}

TEST(EngineeringDbModelTest, PrefetchWithinBufferCausesNoExtraReads) {
  ModelConfig cfg = SmallConfig();
  cfg.prefetch = buffer::PrefetchPolicy::kWithinBuffer;
  RunResult r = RunCell(cfg);
  EXPECT_EQ(r.prefetch_reads, 0u);

  cfg.prefetch = buffer::PrefetchPolicy::kWithinDb;
  RunResult r2 = RunCell(cfg);
  EXPECT_GT(r2.prefetch_reads, 0u);
}

TEST(EngineeringDbModelTest, IoLimitBoundsClusterExamIos) {
  ModelConfig base = SmallConfig();
  base.workload.read_write_ratio = 5;  // plenty of writes
  base.measured_transactions = 500;

  ModelConfig limited = base;
  limited.clustering.pool = cluster::CandidatePool::kIoLimit;
  limited.clustering.io_limit = 2;
  ModelConfig unlimited = base;
  unlimited.clustering.pool = cluster::CandidatePool::kWithinDb;

  RunResult r_lim = RunCell(limited);
  RunResult r_unl = RunCell(unlimited);
  EXPECT_LE(r_lim.cluster_exam_reads, r_unl.cluster_exam_reads);
}

TEST(EngineeringDbModelTest, WithinBufferClusteringNeverExamReads) {
  ModelConfig cfg = SmallConfig();
  cfg.workload.read_write_ratio = 5;
  cfg.clustering.pool = cluster::CandidatePool::kWithinBuffer;
  RunResult r = RunCell(cfg);
  EXPECT_EQ(r.cluster_exam_reads, 0u);
}

// ------------------------------------------------------------ experiment

TEST(ExperimentTest, StandardGridHasNineCellsInPaperOrder) {
  auto grid = StandardWorkloadGrid();
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_EQ(grid.front().Label(), "low3-5");
  EXPECT_EQ(grid.back().Label(), "hi10-100");
}

TEST(ExperimentTest, ClusteringLevelsMatchFigure51) {
  auto levels = ClusteringPolicyLevels();
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_EQ(levels[0].Label(), "No_Clustering");
  EXPECT_EQ(levels[1].Label(), "Cluster_within_Buffer");
  EXPECT_EQ(levels[2].Label(), "2_IO_limit");
  EXPECT_EQ(levels[3].Label(), "10_IO_limit");
  EXPECT_EQ(levels[4].Label(), "No_limit");
}

TEST(ExperimentTest, BufferingLevelsMatchFigure511) {
  auto levels = BufferingLevels();
  ASSERT_EQ(levels.size(), 6u);
  EXPECT_EQ(levels.front().label, "C_p_DB");
  EXPECT_EQ(levels.back().label, "LRU_no_p");
  EXPECT_EQ(AllBufferingCombinations().size(), 9u);
}

TEST(ExperimentTest, WithWorkloadPropagatesDensityToDatabase) {
  ModelConfig cfg = SmallConfig();
  workload::WorkloadConfig w;
  w.density = workload::StructureDensity::kHigh10;
  ModelConfig out = WithWorkload(cfg, w);
  EXPECT_EQ(out.database.density, workload::StructureDensity::kHigh10);
}

TEST(ModelConfigTest, DefaultConfigsValidate) {
  EXPECT_TRUE(ModelConfig{}.Validate().ok());
  EXPECT_TRUE(ScaledConfig().Validate().ok());
  EXPECT_TRUE(TestConfig().Validate().ok());
  EXPECT_TRUE(PaperScaleConfig().Validate().ok());
}

TEST(ModelConfigTest, ValidateNamesTheOffendingField) {
  const auto expect_invalid = [](const ModelConfig& cfg,
                                 const std::string& field) {
    const Status st = cfg.Validate();
    EXPECT_FALSE(st.ok()) << field;
    EXPECT_NE(st.message().find(field), std::string::npos) << st.message();
  };

  ModelConfig cfg = TestConfig();
  cfg.num_users = 0;
  expect_invalid(cfg, "num_users");

  cfg = TestConfig();
  cfg.num_disks = -1;
  expect_invalid(cfg, "num_disks");

  cfg = TestConfig();
  cfg.database_bytes = 0;
  expect_invalid(cfg, "database_bytes");

  cfg = TestConfig();
  cfg.page_size_bytes = 0;
  expect_invalid(cfg, "page_size_bytes");

  cfg = TestConfig();
  cfg.buffer_pages = 7;
  expect_invalid(cfg, "buffer_pages");

  cfg = TestConfig();
  cfg.measured_transactions = 0;
  expect_invalid(cfg, "measured_transactions");

  cfg = TestConfig();
  cfg.warmup_transactions = -5;
  expect_invalid(cfg, "warmup_transactions");

  cfg = TestConfig();
  cfg.measurement_epochs = 0;
  expect_invalid(cfg, "measurement_epochs");

  cfg = TestConfig();
  cfg.rw_ratio_schedule = {10.0, 0.0};
  expect_invalid(cfg, "rw_ratio_schedule[1]");
}

TEST(ModelConfigTest, ScaledBuffersClampsToEightPages) {
  ModelConfig cfg = TestConfig();  // 2 MB: 100/131072 of 512 pages -> clamp
  EXPECT_EQ(cfg.BufferSmall(), 8u);

  // Degenerate sizes land on the same floor instead of dividing by zero.
  cfg.page_size_bytes = 0;
  EXPECT_EQ(cfg.ScaledBuffers(1000), 8u);
  cfg = TestConfig();
  cfg.database_bytes = 0;
  EXPECT_EQ(cfg.ScaledBuffers(1000), 8u);

  // At paper scale the levels come back close to the paper's own numbers
  // (the ratio denominator is 131072 = 512 MB of 4 KB pages, the database
  // is 500 MB, hence ~2% under).
  ModelConfig paper = PaperScaleConfig();
  EXPECT_NEAR(static_cast<double>(paper.ScaledBuffers(1000)), 1000.0, 25.0);
  EXPECT_NEAR(static_cast<double>(paper.ScaledBuffers(100)), 100.0, 3.0);
}

}  // namespace
}  // namespace oodb::core
