#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "workload/db_builder.h"
#include "workload/query.h"
#include "workload/workload_config.h"
#include "workload/workload_gen.h"

namespace oodb::workload {
namespace {

// ------------------------------------------------------------- config

TEST(WorkloadConfigTest, LabelsMatchPaperStyle) {
  WorkloadConfig w;
  w.density = StructureDensity::kHigh10;
  w.read_write_ratio = 100;
  EXPECT_EQ(w.Label(), "hi10-100");
  w.density = StructureDensity::kLow3;
  w.read_write_ratio = 5;
  EXPECT_EQ(w.Label(), "low3-5");
}

TEST(WorkloadConfigTest, FanoutRangesMatchPaperBuckets) {
  EXPECT_LE(FanoutFor(StructureDensity::kLow3).max_fanout, 3);
  EXPECT_GE(FanoutFor(StructureDensity::kMed5).min_fanout, 4);
  EXPECT_LE(FanoutFor(StructureDensity::kMed5).max_fanout, 9);
  EXPECT_GE(FanoutFor(StructureDensity::kHigh10).min_fanout, 10);
}

// ------------------------------------------------------------- builder

class DbBuilderTest : public ::testing::Test {
 protected:
  // Types are registered before affinity_ is built: AffinityModel sizes
  // its type-state table eagerly from the lattice at construction.
  DbBuilderTest()
      : graph_(&lattice_),
        storage_(4096),
        types_(RegisterCadTypes(lattice_)),
        affinity_(&lattice_) {}

  DesignDatabase BuildWith(cluster::CandidatePool pool, DatabaseSpec spec) {
    cluster::ClusterConfig config;
    config.pool = pool;
    config.split = cluster::SplitPolicy::kLinearGreedy;
    cluster_ = std::make_unique<cluster::ClusterManager>(
        &graph_, &storage_, &affinity_, nullptr, config);
    DbBuilder builder(&graph_, cluster_.get(), nullptr, spec);
    return builder.Build(types_);
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager storage_;
  CadTypes types_{};
  cluster::AffinityModel affinity_;
  std::unique_ptr<cluster::ClusterManager> cluster_;
};

TEST_F(DbBuilderTest, ReachesTargetSize) {
  DatabaseSpec spec;
  spec.target_bytes = 1 << 20;
  auto db = BuildWith(cluster::CandidatePool::kNoClustering, spec);
  EXPECT_GE(storage_.used_bytes(), spec.target_bytes);
  EXPECT_GT(db.modules.size(), 5u);
  EXPECT_EQ(db.TotalObjects(), graph_.live_count());
}

TEST_F(DbBuilderTest, EveryObjectIsPlaced) {
  DatabaseSpec spec;
  spec.target_bytes = 256 << 10;
  auto db = BuildWith(cluster::CandidatePool::kWithinDb, spec);
  for (const auto& m : db.modules) {
    for (obj::ObjectId id : m.objects) {
      EXPECT_TRUE(storage_.IsPlaced(id));
      EXPECT_TRUE(graph_.IsLive(id));
    }
  }
}

TEST_F(DbBuilderTest, ModulesHaveStructure) {
  DatabaseSpec spec;
  spec.target_bytes = 512 << 10;
  auto db = BuildWith(cluster::CandidatePool::kNoClustering, spec);
  size_t with_versions = 0, with_corr = 0;
  for (const auto& m : db.modules) {
    EXPECT_NE(m.root, obj::kInvalidObject);
    EXPECT_FALSE(m.objects.empty());
    EXPECT_FALSE(m.composites.empty());
    with_versions += !m.versioned.empty();
    with_corr += !m.corresponding.empty();
  }
  // Version chains and correspondences are probabilistic but must appear
  // in a substantial share of modules.
  EXPECT_GT(with_versions, db.modules.size() / 4);
  EXPECT_GT(with_corr, db.modules.size() / 2);
}

TEST_F(DbBuilderTest, FanoutTracksDensity) {
  DatabaseSpec spec;
  spec.target_bytes = 512 << 10;
  spec.density = StructureDensity::kHigh10;
  auto db = BuildWith(cluster::CandidatePool::kNoClustering, spec);
  // Sample composites of the primary representation: their configuration
  // fan-out must be >= 10 (high density).
  int checked = 0;
  for (const auto& m : db.modules) {
    const auto comps = graph_.Components(m.root);
    if (comps.empty()) continue;
    EXPECT_GE(comps.size(), 10u);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(DbBuilderTest, CorrespondencesLinkRepresentations) {
  DatabaseSpec spec;
  spec.target_bytes = 256 << 10;
  auto db = BuildWith(cluster::CandidatePool::kNoClustering, spec);
  bool found = false;
  for (const auto& m : db.modules) {
    for (obj::ObjectId id : m.corresponding) {
      if (!graph_.IsLive(id)) continue;
      if (!graph_.Correspondents(id).empty()) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DbBuilderTest, VersionDerivationUsedInheritance) {
  DatabaseSpec spec;
  spec.target_bytes = 512 << 10;
  spec.version_fraction = 0.5;
  auto db = BuildWith(cluster::CandidatePool::kNoClustering, spec);
  // Some derived heirs must carry instance-inheritance links (geometry is
  // by-reference under the default cost model).
  bool heir_with_link = false;
  for (const auto& m : db.modules) {
    for (obj::ObjectId id : m.versioned) {
      if (graph_.IsLive(id) && !graph_.InheritanceSources(id).empty()) {
        heir_with_link = true;
        break;
      }
    }
  }
  EXPECT_TRUE(heir_with_link);
}

TEST_F(DbBuilderTest, ArrivalOrderScattersModulesAcrossPages) {
  DatabaseSpec spec;
  spec.target_bytes = 512 << 10;
  spec.concurrent_streams = 10;
  auto db = BuildWith(cluster::CandidatePool::kNoClustering, spec);
  // Unclustered: a module's objects share pages with other modules.
  double scattered_modules = 0;
  for (const auto& m : db.modules) {
    std::set<store::PageId> pages;
    for (obj::ObjectId id : m.objects) pages.insert(storage_.PageOf(id));
    // Perfect clustering would need about bytes/page_size pages; arrival
    // order with 10 interleaved streams needs several times more.
    uint64_t bytes = 0;
    for (obj::ObjectId id : m.objects) bytes += storage_.SizeOf(id);
    const double ideal =
        std::max(1.0, static_cast<double>(bytes) / 4096.0);
    if (static_cast<double>(pages.size()) > 2.5 * ideal) {
      scattered_modules += 1;
    }
  }
  EXPECT_GT(scattered_modules, db.modules.size() * 0.5);
}

TEST_F(DbBuilderTest, ClusteringKeepsModulesDense) {
  DatabaseSpec spec;
  spec.target_bytes = 512 << 10;
  spec.concurrent_streams = 10;

  auto pages_per_module = [&](cluster::CandidatePool pool) {
    // Fresh state per run.
    obj::ObjectGraph graph(&lattice_);
    store::StorageManager storage(4096);
    cluster::AffinityModel affinity(&lattice_);
    cluster::ClusterConfig config;
    config.pool = pool;
    config.split = cluster::SplitPolicy::kLinearGreedy;
    cluster::ClusterManager mgr(&graph, &storage, &affinity, nullptr,
                                config);
    DbBuilder builder(&graph, &mgr, nullptr, spec);
    auto db = builder.Build(types_);
    double total = 0;
    for (const auto& m : db.modules) {
      std::set<store::PageId> pages;
      for (obj::ObjectId id : m.objects) pages.insert(storage.PageOf(id));
      uint64_t bytes = 0;
      for (obj::ObjectId id : m.objects) bytes += storage.SizeOf(id);
      total += static_cast<double>(pages.size()) /
               std::max(1.0, static_cast<double>(bytes) / 4096.0);
    }
    return total / static_cast<double>(db.modules.size());
  };

  const double unclustered =
      pages_per_module(cluster::CandidatePool::kNoClustering);
  const double clustered =
      pages_per_module(cluster::CandidatePool::kWithinDb);
  EXPECT_LT(clustered, unclustered * 0.55);
}

// ------------------------------------------------------------ generator

class WorkloadGenTest : public ::testing::Test {
 protected:
  WorkloadGenTest()
      : graph_(&lattice_),
        storage_(4096),
        types_(RegisterCadTypes(lattice_)),
        affinity_(&lattice_) {
    cluster::ClusterConfig config;
    config.pool = cluster::CandidatePool::kNoClustering;
    cluster_ = std::make_unique<cluster::ClusterManager>(
        &graph_, &storage_, &affinity_, nullptr, config);
    DatabaseSpec spec;
    spec.target_bytes = 256 << 10;
    DbBuilder builder(&graph_, cluster_.get(), nullptr, spec);
    db_ = builder.Build(types_);
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager storage_;
  CadTypes types_{};
  cluster::AffinityModel affinity_;
  std::unique_ptr<cluster::ClusterManager> cluster_;
  DesignDatabase db_;
};

TEST_F(WorkloadGenTest, SessionLengthInPaperRange) {
  WorkloadConfig w;
  WorkloadGenerator gen(&graph_, &db_, w, 1);
  for (int i = 0; i < 200; ++i) {
    const int len = gen.BeginSession();
    EXPECT_GE(len, 5);
    EXPECT_LE(len, 20);
    EXPECT_LT(gen.current_module(), db_.modules.size());
  }
}

TEST_F(WorkloadGenTest, TransactionsTargetLiveObjects) {
  WorkloadConfig w;
  WorkloadGenerator gen(&graph_, &db_, w, 2);
  gen.BeginSession();
  for (int i = 0; i < 500; ++i) {
    const TransactionSpec spec = gen.NextTransaction();
    ASSERT_NE(spec.target, obj::kInvalidObject);
    EXPECT_TRUE(graph_.IsLive(spec.target));
    // Simulate op feedback so the R/W controller advances.
    gen.RecordOps(IsReadQuery(spec.type) ? 4 : 0,
                  IsReadQuery(spec.type) ? 0 : 1);
  }
}

TEST_F(WorkloadGenTest, ControllerConvergesToTargetRatio) {
  for (double target : {5.0, 10.0, 100.0}) {
    WorkloadConfig w;
    w.read_write_ratio = target;
    WorkloadGenerator gen(&graph_, &db_, w, 3);
    Rng rng(17);
    gen.BeginSession();
    for (int i = 0; i < 5000; ++i) {
      if (i % 12 == 0) gen.BeginSession();
      const TransactionSpec spec = gen.NextTransaction();
      if (IsReadQuery(spec.type)) {
        // Read transactions trigger a variable number of logical reads.
        gen.RecordOps(1 + rng.NextBelow(8), 0);
      } else {
        gen.RecordOps(0, 1 + rng.NextBelow(2));
      }
    }
    EXPECT_NEAR(gen.AchievedRatio(), target, target * 0.15)
        << "target " << target;
  }
}

TEST_F(WorkloadGenTest, ReadTypesRespectTargets) {
  WorkloadConfig w;
  WorkloadGenerator gen(&graph_, &db_, w, 4);
  gen.BeginSession();
  for (int i = 0; i < 1000; ++i) {
    const TransactionSpec spec = gen.NextTransaction();
    gen.RecordOps(3, 0);  // keep it issuing reads
    switch (spec.type) {
      case QueryType::kComponentRetrieval:
      case QueryType::kCompositeRetrieval:
        // Targets must be navigable entry points.
        EXPECT_FALSE(graph_.Components(spec.target).empty());
        break;
      case QueryType::kDescendantVersions:
      case QueryType::kAncestorVersions: {
        const bool has_versions =
            !graph_.Descendants(spec.target).empty() ||
            !graph_.Ancestors(spec.target).empty();
        EXPECT_TRUE(has_versions);
        break;
      }
      case QueryType::kCorresponding:
        EXPECT_FALSE(graph_.Correspondents(spec.target).empty());
        break;
      default:
        break;
    }
  }
}

TEST_F(WorkloadGenTest, ModulePopularityIsSkewed) {
  WorkloadConfig w;
  w.module_skew = 0.8;
  WorkloadGenerator gen(&graph_, &db_, w, 5);
  std::vector<int> counts(db_.modules.size(), 0);
  for (int i = 0; i < 5000; ++i) {
    gen.BeginSession();
    ++counts[gen.current_module()];
  }
  // Module 0 must be sampled far more than the median module.
  std::vector<int> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(counts[0], sorted[sorted.size() / 2] * 3);
}

}  // namespace
}  // namespace oodb::workload
