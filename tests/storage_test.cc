#include "gtest/gtest.h"
#include "storage/page.h"
#include "storage/storage_manager.h"

namespace oodb::store {
namespace {

// ---------------------------------------------------------------- page

TEST(PageTest, InsertTracksSpace) {
  Page p(100);
  EXPECT_TRUE(p.Insert(1, 40));
  EXPECT_TRUE(p.Insert(2, 30));
  EXPECT_EQ(p.used_bytes(), 70u);
  EXPECT_EQ(p.free_bytes(), 30u);
  EXPECT_EQ(p.object_count(), 2u);
}

TEST(PageTest, RejectsOverflowWithoutModification) {
  Page p(100);
  EXPECT_TRUE(p.Insert(1, 80));
  EXPECT_FALSE(p.Insert(2, 30));
  EXPECT_EQ(p.used_bytes(), 80u);
  EXPECT_FALSE(p.Contains(2));
}

TEST(PageTest, ExactFitAccepted) {
  Page p(100);
  EXPECT_TRUE(p.Insert(1, 100));
  EXPECT_EQ(p.free_bytes(), 0u);
}

TEST(PageTest, RemoveReclaimsSpace) {
  Page p(100);
  p.Insert(1, 40);
  p.Insert(2, 30);
  EXPECT_TRUE(p.Remove(1));
  EXPECT_EQ(p.used_bytes(), 30u);
  EXPECT_FALSE(p.Contains(1));
  EXPECT_TRUE(p.Contains(2));
  EXPECT_FALSE(p.Remove(1));  // already gone
}

TEST(PageTest, ResizeObjectRespectsCapacity) {
  Page p(100);
  p.Insert(1, 40);
  p.Insert(2, 30);
  EXPECT_TRUE(p.ResizeObject(1, 60));
  EXPECT_EQ(p.used_bytes(), 90u);
  EXPECT_FALSE(p.ResizeObject(1, 80));  // 80+30 > 100
  EXPECT_EQ(p.used_bytes(), 90u);       // unchanged on failure
  EXPECT_FALSE(p.ResizeObject(99, 10)); // absent object
}

// --------------------------------------------------------- storage manager

class StorageManagerTest : public ::testing::Test {
 protected:
  StorageManager store_{1000};
};

TEST_F(StorageManagerTest, PlaceAndLookup) {
  PageId p = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(7, 100, p).ok());
  EXPECT_EQ(store_.PageOf(7), p);
  EXPECT_TRUE(store_.IsPlaced(7));
  EXPECT_EQ(store_.SizeOf(7), 100u);
  EXPECT_EQ(store_.used_bytes(), 100u);
}

TEST_F(StorageManagerTest, DoublePlacementRejected) {
  PageId p = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(7, 100, p).ok());
  Status s = store_.Place(7, 100, p);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(StorageManagerTest, FullPageRejectsPlacement) {
  PageId p = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(1, 900, p).ok());
  EXPECT_EQ(store_.Place(2, 200, p).code(), StatusCode::kResourceExhausted);
}

TEST_F(StorageManagerTest, OversizeObjectInvalid) {
  PageId p = store_.AllocatePage();
  EXPECT_EQ(store_.Place(1, 1001, p).code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageManagerTest, AppendPlacementFillsThenAllocates) {
  auto p1 = store_.PlaceAppend(1, 600);
  ASSERT_TRUE(p1.ok());
  auto p2 = store_.PlaceAppend(2, 600);  // doesn't fit on p1
  ASSERT_TRUE(p2.ok());
  EXPECT_NE(*p1, *p2);
  auto p3 = store_.PlaceAppend(3, 300);  // fits on p2
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(*p3, *p2);
  EXPECT_EQ(store_.page_count(), 2u);
}

TEST_F(StorageManagerTest, RelocateMovesBetweenPages) {
  PageId a = store_.AllocatePage();
  PageId b = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(1, 100, a).ok());
  ASSERT_TRUE(store_.Relocate(1, b).ok());
  EXPECT_EQ(store_.PageOf(1), b);
  EXPECT_FALSE(store_.page(a).Contains(1));
  EXPECT_TRUE(store_.page(b).Contains(1));
  EXPECT_EQ(store_.used_bytes(), 100u);  // unchanged by a move
}

TEST_F(StorageManagerTest, RelocateToFullPageFailsCleanly) {
  PageId a = store_.AllocatePage();
  PageId b = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(1, 100, a).ok());
  ASSERT_TRUE(store_.Place(2, 950, b).ok());
  EXPECT_EQ(store_.Relocate(1, b).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store_.PageOf(1), a);  // still where it was
}

TEST_F(StorageManagerTest, RelocateToSamePageIsNoop) {
  PageId a = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(1, 100, a).ok());
  EXPECT_TRUE(store_.Relocate(1, a).ok());
  EXPECT_EQ(store_.PageOf(1), a);
}

TEST_F(StorageManagerTest, EraseFreesSpaceAndDirectory) {
  PageId a = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(1, 100, a).ok());
  ASSERT_TRUE(store_.Erase(1).ok());
  EXPECT_FALSE(store_.IsPlaced(1));
  EXPECT_EQ(store_.used_bytes(), 0u);
  EXPECT_EQ(store_.Erase(1).code(), StatusCode::kNotFound);
}

TEST_F(StorageManagerTest, ResizeInPlace) {
  PageId a = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(1, 100, a).ok());
  ASSERT_TRUE(store_.ResizeInPlace(1, 300).ok());
  EXPECT_EQ(store_.SizeOf(1), 300u);
  EXPECT_EQ(store_.used_bytes(), 300u);
  ASSERT_TRUE(store_.Place(2, 650, a).ok());
  EXPECT_EQ(store_.ResizeInPlace(1, 400).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(StorageManagerTest, OccupancyIgnoresEmptyPages) {
  PageId a = store_.AllocatePage();
  store_.AllocatePage();  // stays empty
  ASSERT_TRUE(store_.Place(1, 500, a).ok());
  EXPECT_DOUBLE_EQ(store_.MeanOccupancy(), 0.5);
}

TEST_F(StorageManagerTest, UnknownObjectUnplaced) {
  EXPECT_EQ(store_.PageOf(424242), kInvalidPage);
  EXPECT_FALSE(store_.IsPlaced(424242));
}

// Property: after any sequence of placements and relocations, every page's
// used_bytes equals the sum of its slot sizes and the directory agrees with
// slot residency.
TEST_F(StorageManagerTest, InvariantsHoldUnderChurn) {
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(store_.AllocatePage());
  uint64_t seed = 99;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  for (obj::ObjectId id = 0; id < 200; ++id) {
    store_.PlaceAppend(id, 50 + next() % 150).status();
  }
  for (int step = 0; step < 500; ++step) {
    const obj::ObjectId id = next() % 200;
    const PageId to = pages[next() % pages.size()];
    store_.Relocate(id, to);  // may fail; that's fine
  }
  for (PageId p = 0; p < store_.page_count(); ++p) {
    uint32_t sum = 0;
    for (const Slot& s : store_.page(p).slots()) {
      sum += s.size_bytes;
      EXPECT_EQ(store_.PageOf(s.object), p);
    }
    EXPECT_EQ(store_.page(p).used_bytes(), sum);
    EXPECT_LE(sum, store_.page(p).capacity_bytes());
  }
}

}  // namespace
}  // namespace oodb::store
