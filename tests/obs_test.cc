#include <algorithm>
#include <cstdlib>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/simulator.h"

namespace oodb::obs {
namespace {

TEST(MetricsTest, CounterAddAndRead) {
  MetricsRegistry reg(/*enabled=*/true);
  const CounterHandle c = reg.Counter("a");
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(reg.value(c), 0u);
  reg.Add(c);
  reg.Add(c, 41);
  EXPECT_EQ(reg.value(c), 42u);
}

TEST(MetricsTest, ReregisteringReturnsSameSlot) {
  MetricsRegistry reg(/*enabled=*/true);
  const CounterHandle a = reg.Counter("a");
  const CounterHandle again = reg.Counter("a");
  EXPECT_EQ(a.slot, again.slot);
  reg.Add(a, 3);
  reg.Add(again, 4);
  EXPECT_EQ(reg.value(a), 7u);
}

TEST(MetricsTest, GaugeKeepsLastSet) {
  MetricsRegistry reg(/*enabled=*/true);
  const GaugeHandle g = reg.Gauge("g");
  reg.Set(g, 1.5);
  reg.Set(g, -2.25);
  EXPECT_EQ(reg.value(g), -2.25);
}

TEST(MetricsTest, HistogramBucketsObservations) {
  MetricsRegistry reg(/*enabled=*/true);
  const HistogramHandle h = reg.Histogram("h", {1.0, 2.0, 4.0});
  reg.Observe(h, 0.5);   // bucket 0 (<= 1)
  reg.Observe(h, 1.0);   // bucket 0 (inclusive upper bound)
  reg.Observe(h, 3.0);   // bucket 2
  reg.Observe(h, 100.0); // overflow bucket
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->buckets.size(), 4u);
  EXPECT_EQ(hs->buckets[0], 2u);
  EXPECT_EQ(hs->buckets[1], 0u);
  EXPECT_EQ(hs->buckets[2], 1u);
  EXPECT_EQ(hs->buckets[3], 1u);
  EXPECT_EQ(hs->count, 4u);
  EXPECT_DOUBLE_EQ(hs->sum, 104.5);
  EXPECT_DOUBLE_EQ(*hs->Mean(), 104.5 / 4);
}

TEST(MetricsTest, DisabledRegistryNoops) {
  MetricsRegistry reg(/*enabled=*/false);
  const CounterHandle c = reg.Counter("a");
  const GaugeHandle g = reg.Gauge("g");
  const HistogramHandle h = reg.Histogram("h", {1.0});
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  reg.Add(c, 5);
  reg.Set(g, 1.0);
  reg.Observe(h, 1.0);
  EXPECT_EQ(reg.value(c), 0u);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(MetricsTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg(/*enabled=*/true);
  const CounterHandle c = reg.Counter("a");
  const HistogramHandle h = reg.Histogram("h", {1.0});
  reg.Add(c, 9);
  reg.Observe(h, 0.5);
  reg.ResetValues();
  EXPECT_EQ(reg.value(c), 0u);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
  EXPECT_EQ(snap.histogram("h")->Mean(), std::nullopt);
  // The handle still resolves to the same slot.
  reg.Add(c, 2);
  EXPECT_EQ(reg.value(c), 2u);
}

MetricsSnapshot MakeSnapshot(uint64_t a, double g, double observed) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.Add(reg.Counter("a"), a);
  reg.Set(reg.Gauge("g"), g);
  reg.Observe(reg.Histogram("h", {1.0, 2.0}), observed);
  return reg.Snapshot();
}

TEST(MetricsTest, MergeSumsAndAppendsDeterministically) {
  MetricsSnapshot merged = MakeSnapshot(1, 0.5, 0.25);
  merged.MergeFrom(MakeSnapshot(2, 1.5, 1.75));
  EXPECT_EQ(*merged.counter("a"), 3u);
  EXPECT_DOUBLE_EQ(*merged.gauge("g"), 2.0);
  const HistogramSnapshot* h = merged.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 1u);

  // A name only the other snapshot has is appended, preserving its order.
  MetricsRegistry extra(/*enabled=*/true);
  extra.Add(extra.Counter("z"), 7);
  merged.MergeFrom(extra.Snapshot());
  EXPECT_EQ(*merged.counter("z"), 7u);
  EXPECT_EQ(merged.counters.back().first, "z");

  // Folding in a different grouping gives the same totals and the JSON
  // rendering is identical — the bit-identical-at-any-job-count property.
  MetricsSnapshot refolded = MakeSnapshot(1, 0.5, 0.25);
  MetricsSnapshot tail = MakeSnapshot(2, 1.5, 1.75);
  tail.MergeFrom(extra.Snapshot());
  refolded.MergeFrom(tail);
  EXPECT_EQ(refolded.ToJson(), merged.ToJson());
}

TEST(MetricsTest, SetCounterOverwritesInsteadOfAdding) {
  MetricsRegistry reg(/*enabled=*/true);
  const CounterHandle c = reg.Counter("a");
  reg.SetCounter(c, 10);
  reg.SetCounter(c, 7);  // idempotent mirroring: last write wins
  EXPECT_EQ(reg.value(c), 7u);
  reg.SetCounter(CounterHandle{}, 99);  // invalid handle: no-op
  EXPECT_EQ(reg.value(c), 7u);
}

TEST(MetricsTest, QuantileInterpolatesWithinBuckets) {
  MetricsRegistry reg(/*enabled=*/true);
  const HistogramHandle h = reg.Histogram("h", {1.0, 2.0, 4.0});
  reg.Observe(h, 0.5);
  reg.Observe(h, 1.0);
  reg.Observe(h, 3.0);
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  // Bucket masses: [2, 0, 1, 0] over bounds [0..1], (1..2], (2..4].
  EXPECT_DOUBLE_EQ(hs->Quantile(0.0), 0.0);
  // target = 1.5 of 2 in bucket 0: 0 + 1 * (1.5 / 2).
  EXPECT_DOUBLE_EQ(hs->Quantile(0.5), 0.75);
  // target = 3 lands at the top of bucket 2.
  EXPECT_DOUBLE_EQ(hs->Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(hs->Quantile(2.0), 4.0);  // clamped q
}

TEST(MetricsTest, QuantileClampsOverflowMassToLastBound) {
  MetricsRegistry reg(/*enabled=*/true);
  const HistogramHandle h = reg.Histogram("h", {1.0, 2.0});
  reg.Observe(h, 100.0);  // all mass in the overflow bucket
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  EXPECT_DOUBLE_EQ(hs->Quantile(0.5), 2.0);
}

TEST(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.Histogram("h", {1.0});
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  // No interpolation over garbage: empty histograms answer 0.0, and the
  // count field is the "no samples" signal consumers null-guard on.
  EXPECT_EQ(hs->count, 0u);
  EXPECT_DOUBLE_EQ(hs->Quantile(0.5), 0.0);
}

TEST(MetricsTest, RatioIsNullSafe) {
  EXPECT_EQ(MetricsSnapshot::Ratio(std::nullopt, 10), std::nullopt);
  EXPECT_EQ(MetricsSnapshot::Ratio(1, std::nullopt), std::nullopt);
  EXPECT_EQ(MetricsSnapshot::Ratio(1, 0), std::nullopt);
  EXPECT_DOUBLE_EQ(*MetricsSnapshot::Ratio(3, 4), 0.75);
}

TEST(MetricsTest, SnapshotJsonShape) {
  const std::string json = MakeSnapshot(5, 1.0, 0.5).ToJson();
  EXPECT_NE(json.find("\"counters\":{\"a\":5}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[1,0,0]"), std::string::npos);
}

TEST(TraceSinkTest, DefaultConstructedIsDisabled) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.Record(Subsystem::kIo, TraceEventType::kPageRead, 1);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.Events().empty());
}

TEST(TraceSinkTest, StampsSimulatedTime) {
  sim::Simulator sim;
  TraceSink sink(&sim, 8);
  sim.Schedule(2.5, [&] {
    sink.Record(Subsystem::kCore, TraceEventType::kTxnBegin, 1, 2);
  });
  sim.Run();
  const auto events = sink.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].sim_time_s, 2.5);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 2u);
  EXPECT_EQ(events[0].subsystem, Subsystem::kCore);
}

TEST(TraceSinkTest, RingDropsOldestAndCounts) {
  TraceSink sink(nullptr, 4);
  for (uint64_t i = 0; i < 10; ++i) {
    sink.Record(Subsystem::kBuffer, TraceEventType::kEviction, i);
  }
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: events 6..9 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(TraceSinkTest, NoDropsBelowCapacity) {
  TraceSink sink(nullptr, 8);
  for (uint64_t i = 0; i < 8; ++i) {
    sink.Record(Subsystem::kIo, TraceEventType::kPageWrite, i);
  }
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.Events().size(), 8u);
}

TEST(TraceCollectorTest, ChromeTraceStructure) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Reset();
  TraceSink sink(nullptr, 2);
  sink.Record(Subsystem::kIo, TraceEventType::kPageRead, 7, 0, 3);
  sink.Record(Subsystem::kTxlog, TraceEventType::kLogFlush, 4096, 12);
  sink.Record(Subsystem::kIo, TraceEventType::kPageWrite, 9);  // drops #1
  collector.Collect(0, "C_wb/hi10-100", sink);
  const std::string json = collector.ChromeTraceJson();
  collector.Reset();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("C_wb/hi10-100"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // The dropped oldest event is accounted for...
  EXPECT_NE(json.find("\"semclust_ring_dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
  // ...and is absent from the retained events.
  EXPECT_EQ(json.find("\"page-read\""), std::string::npos);
  EXPECT_NE(json.find("\"log-flush\""), std::string::npos);
  EXPECT_NE(json.find("\"page-write\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"txlog\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"simulated\""), std::string::npos);
}

TEST(TraceCollectorTest, OverflowedRingStillExportsParsableTrace) {
  // The satellite check for SEMCLUST_TRACE_EVENTS: size the ring from the
  // environment, overflow it heavily, and assert the exported Chrome
  // trace is still line-parsable with the drops accounted for.
  ASSERT_EQ(setenv("SEMCLUST_TRACE_EVENTS", "8", /*overwrite=*/1), 0);
  const size_t capacity = TraceCollector::RingCapacityFromEnv();
  unsetenv("SEMCLUST_TRACE_EVENTS");
  ASSERT_EQ(capacity, 8u);

  TraceSink sink(nullptr, capacity);
  constexpr uint64_t kRecorded = 1000;
  for (uint64_t i = 0; i < kRecorded; ++i) {
    sink.Record(Subsystem::kIo, TraceEventType::kPageRead, i);
  }
  EXPECT_EQ(sink.dropped(), kRecorded - capacity);

  TraceCollector& collector = TraceCollector::Global();
  collector.Reset();
  collector.Collect(0, "overflow-cell", sink);
  const std::string json = collector.ChromeTraceJson();
  collector.Reset();

  // Every event line is a balanced JSON object (the property
  // tools/trace_summary's line scanner relies on), and only `capacity`
  // events survived.
  size_t event_lines = 0;
  size_t begin = 0;
  while (begin < json.size()) {
    size_t end = json.find('\n', begin);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(begin, end - begin);
    begin = end + 1;
    if (line.find("\"ph\":\"i\"") == std::string::npos) continue;
    ++event_lines;
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'))
        << line;
  }
  EXPECT_EQ(event_lines, capacity);
  EXPECT_NE(json.find("\"semclust_ring_dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":992"), std::string::npos);
}

TEST(TraceCollectorTest, DisabledSinkIsNotCollected) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Reset();
  TraceSink sink;
  collector.Collect(3, "nope", sink);
  EXPECT_TRUE(collector.empty());
  collector.Reset();
}

}  // namespace
}  // namespace oodb::obs
