#include <array>
#include <cmath>

#include "gtest/gtest.h"
#include "analysis/fractional.h"

namespace oodb::analysis {
namespace {

// Synthetic 4-factor surface with one generated factor D = ABC.
// response = 10 + 3A + 2B + 1C + 0.5D (levels in {-1,+1}); no
// interactions, so every estimate should be exact despite aliasing.
FractionalDesign MakeDesign(FractionalDesign::Runner runner) {
  std::vector<Factor> factors;
  // Encode levels through distinct config fields so the runner can read
  // them back.
  factors.push_back({"A", [](core::ModelConfig& c, bool h) {
                       c.cpu_mips = h ? 2 : 1;
                     }});
  factors.push_back({"B", [](core::ModelConfig& c, bool h) {
                       c.num_users = h ? 2 : 1;
                     }});
  factors.push_back({"C", [](core::ModelConfig& c, bool h) {
                       c.num_disks = h ? 2 : 1;
                     }});
  factors.push_back({"D", [](core::ModelConfig& c, bool h) {
                       c.seed = h ? 2 : 1;
                     }});
  return FractionalDesign(core::ModelConfig{}, std::move(factors),
                          /*generators=*/{0b111}, std::move(runner));
}

double Surface(const core::ModelConfig& c) {
  const double a = c.cpu_mips > 1.5 ? 1 : -1;
  const double b = c.num_users > 1.5 ? 1 : -1;
  const double d = c.num_disks > 1.5 ? 1 : -1;  // factor C
  const double e = c.seed > 1.5 ? 1 : -1;       // factor D
  return 10 + 3 * a + 2 * b + 1 * d + 0.5 * e;
}

TEST(FractionalTest, HalfFractionRunsHalfTheCells) {
  auto design = MakeDesign(Surface);
  EXPECT_EQ(design.num_runs(), 8u);  // 2^(4-1)
  EXPECT_EQ(design.num_base_factors(), 3u);
  design.Run();
}

TEST(FractionalTest, MainEffectsExactOnAdditiveSurface) {
  auto design = MakeDesign(Surface);
  design.Run();
  const auto effects = design.MainEffects();
  ASSERT_EQ(effects.size(), 4u);
  EXPECT_NEAR(effects[0].effect, 6.0, 1e-12);  // A: 2*3
  EXPECT_NEAR(effects[1].effect, 4.0, 1e-12);  // B
  EXPECT_NEAR(effects[2].effect, 2.0, 1e-12);  // C
  EXPECT_NEAR(effects[3].effect, 1.0, 1e-12);  // D
}

TEST(FractionalTest, DefiningContrastAndResolution) {
  auto design = MakeDesign(Surface);
  const auto contrasts = design.DefiningContrasts();
  ASSERT_EQ(contrasts.size(), 1u);
  EXPECT_EQ(contrasts[0], 0b1111u);  // I = ABCD
  EXPECT_EQ(design.Resolution(), 4);
}

TEST(FractionalTest, AliasedSubsetsShareEstimates) {
  auto design = MakeDesign(Surface);
  design.Run();
  // With I = ABCD, main effect A aliases with BCD; AB aliases with CD.
  EXPECT_DOUBLE_EQ(design.Contrast(0b0001), design.Contrast(0b1110));
  EXPECT_DOUBLE_EQ(design.Contrast(0b0011), design.Contrast(0b1100));
}

TEST(FractionalTest, AliasListingMatchesTheory) {
  auto design = MakeDesign(Surface);
  // Aliases of AB (within order 2): CD.
  const auto aliases = design.Aliases(0b0011, /*max_order=*/2);
  ASSERT_EQ(aliases.size(), 1u);
  EXPECT_EQ(aliases[0], "C x D");
  // Main effect A has no alias of order <= 2 at resolution IV.
  EXPECT_TRUE(design.Aliases(0b0001, 2).empty());
}

TEST(FractionalTest, ReduceToBaseFoldsGeneratedFactors) {
  auto design = MakeDesign(Surface);
  // Factor D (bit 3) reduces to ABC (0b111).
  EXPECT_EQ(design.ReduceToBase(0b1000), 0b111u);
  // AD reduces to BC (A cancels).
  EXPECT_EQ(design.ReduceToBase(0b1001), 0b110u);
}

TEST(FractionalTest, EightFactorSixteenRunDesignIsResolutionIV) {
  std::vector<Factor> factors;
  for (char c = 'A'; c <= 'H'; ++c) {
    factors.push_back({std::string(1, c),
                       [](core::ModelConfig&, bool) {}});
  }
  FractionalDesign design(core::ModelConfig{}, std::move(factors),
                          StandardHalfGenerators8(),
                          [](const core::ModelConfig&) { return 0.0; });
  EXPECT_EQ(design.num_runs(), 16u);
  EXPECT_EQ(design.Resolution(), 4);
  EXPECT_EQ(design.DefiningContrasts().size(), 15u);
}

TEST(FractionalTest, EightFactorDesignEstimatesAdditiveMains) {
  // Additive surface over 8 factors read back through a side channel.
  static thread_local std::array<bool, 8> levels;
  std::vector<Factor> factors;
  for (int i = 0; i < 8; ++i) {
    factors.push_back({std::string(1, static_cast<char>('A' + i)),
                       [i](core::ModelConfig&, bool h) { levels[i] = h; }});
  }
  auto runner = [](const core::ModelConfig&) {
    double r = 5;
    for (int i = 0; i < 8; ++i) {
      r += (i + 1) * 0.5 * (levels[i] ? 1 : -1);
    }
    return r;
  };
  FractionalDesign design(core::ModelConfig{}, std::move(factors),
                          StandardHalfGenerators8(), runner);
  design.Run();
  const auto effects = design.MainEffects();
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(effects[i].effect, (i + 1) * 1.0, 1e-9) << "factor " << i;
  }
}

}  // namespace
}  // namespace oodb::analysis
