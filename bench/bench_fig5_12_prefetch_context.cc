// Regenerates Figure 5.12: prefetching effect under the context-sensitive
// buffer replacement policy.

#include "bench_prefetch_common.h"

int main() {
  return oodb::bench::RunPrefetchFigure(
      "Figure 5.12", oodb::buffer::ReplacementPolicy::kContextSensitive);
}
