// Regenerates Figure 5.7: clustering effect under medium structure
// density, sweeping the read/write ratio.

#include <cstdio>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.7", "Clustering effect under medium structure density",
      "clustering without I/O limitation performs best for R/W > 10, and "
      "its response time stays nearly flat across ratios — the stability "
      "some real-time applications require");

  const auto grid = bench::RunClusteringGrid(
      core::RatioSweep(workload::StructureDensity::kMed5));
  bench::PrintGrid(grid);

  const size_t kNoLimit = 4;
  // Flatness of the no-limit row across ratios.
  double lo = grid.At(kNoLimit, 0), hi = grid.At(kNoLimit, 0);
  for (size_t w = 0; w < grid.workload_labels.size(); ++w) {
    lo = std::min(lo, grid.At(kNoLimit, w));
    hi = std::max(hi, grid.At(kNoLimit, w));
  }
  std::printf("\nNo_limit response spread across ratios: %.1f%%\n",
              (hi / lo - 1) * 100);
  bench::ShapeCheck(
      "No_limit response varies by < 35% across the whole ratio sweep",
      hi <= 1.35 * lo);

  bool best_at_100 = true;
  for (size_t p = 1; p < grid.policy_labels.size(); ++p) {
    if (grid.At(kNoLimit, 2) > 1.05 * grid.At(p, 2)) best_at_100 = false;
  }
  bench::ShapeCheck("No_limit best (within 5%) at R/W 100", best_at_100);
  return 0;
}
