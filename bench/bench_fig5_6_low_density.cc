// Regenerates Figure 5.6: clustering effect under low structure density,
// sweeping the read/write ratio.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.6", "Clustering effect under low structure density",
      "any clustering beats No_Clustering; clustering with and without "
      "I/O limitation perform similarly (few candidates exist at low "
      "density), so 2_IO_limit is the best choice for high-R/W low-"
      "density applications");

  const auto grid = bench::RunClusteringGrid(
      core::RatioSweep(workload::StructureDensity::kLow3));
  bench::PrintGrid(grid);

  const size_t kNone = 0, k2Io = 2, kNoLimit = 4;
  bool clustering_wins = true;
  double max_spread = 0;
  for (size_t w = 0; w < grid.workload_labels.size(); ++w) {
    if (grid.At(kNoLimit, w) > grid.At(kNone, w)) clustering_wins = false;
    const double spread =
        std::abs(grid.At(k2Io, w) - grid.At(kNoLimit, w)) /
        grid.At(kNoLimit, w);
    max_spread = std::max(max_spread, spread);
  }
  bench::ShapeCheck("clustering beats No_Clustering at every ratio",
                    clustering_wins);
  std::printf("\nmax 2_IO_limit vs No_limit spread: %.1f%%\n",
              max_spread * 100);
  bench::ShapeCheck("2_IO_limit within 15% of No_limit at every ratio",
                    max_spread <= 0.15);
  return 0;
}
