// Regenerates Figure 5.9: page-splitting effects analysis — No_Splitting,
// Linear_Split, and NP_Split under clustering without I/O limitation,
// across the nine workload cells.

#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.9", "Page splitting effects analysis",
      "No_Splitting wins at low R/W (splits cost writer I/O that few "
      "reads amortise); Linear_Split gives the best response when both "
      "R/W and density are high; NP_Split ~= Linear_Split at low density "
      "(small dependency graphs leave little room for optimality)");

  const auto cells = core::StandardWorkloadGrid();
  const cluster::SplitPolicy policies[] = {cluster::SplitPolicy::kNoSplit,
                                           cluster::SplitPolicy::kLinearGreedy,
                                           cluster::SplitPolicy::kExhaustive};

  std::vector<std::string> headers{"split policy \\ workload"};
  for (const auto& w : cells) headers.push_back(w.Label());
  TablePrinter table(std::move(headers));

  double rt[3][9];
  int p = 0;
  for (auto split : policies) {
    std::vector<std::string> row{cluster::SplitPolicyName(split)};
    int w = 0;
    for (const auto& cell : cells) {
      core::ModelConfig cfg = core::WithWorkload(bench::BaseConfig(), cell);
      cfg.clustering.pool = cluster::CandidatePool::kWithinDb;
      cfg.clustering.split = split;
      rt[p][w] = bench::MeanResponse(cfg);
      row.push_back(bench::Sec(rt[p][w]));
      ++w;
    }
    table.AddRow(std::move(row));
    ++p;
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  // Workload index: hi10-100 = 8, low3-5 = 0, low3-100 = 2.
  bench::ShapeCheck(
      "Linear_Split best-or-tied (within 5%) at hi10-100",
      rt[1][8] <= 1.05 * rt[0][8] && rt[1][8] <= 1.05 * rt[2][8]);
  bench::ShapeCheck(
      "NP_Split ~= Linear_Split at low density (within 10%)",
      rt[2][0] <= 1.10 * rt[1][0] && rt[1][0] <= 1.10 * rt[2][0]);
  std::printf(
      "\nNOTE: the paper additionally finds No_Splitting *better* at low\n"
      "R/W. Its §5.1.1 simulation assumed candidate pages never overflow,\n"
      "so its no-split baseline pays no placement penalty. This\n"
      "reproduction handles overflow mechanically (fresh-page nuclei);\n"
      "splitting then also wins at low R/W because the writer's split cost\n"
      "is small next to the locality it preserves. Documented in\n"
      "EXPERIMENTS.md.\n");
  bench::ShapeCheck(
      "split overhead never dominates: splitting >= no-splitting nowhere "
      "by more than 10%",
      [&] {
        for (int w = 0; w < 9; ++w) {
          if (rt[1][w] > 1.10 * rt[0][w]) return false;
        }
        return true;
      }());
  return 0;
}
