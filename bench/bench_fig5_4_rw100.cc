// Regenerates Figure 5.4: clustering effect under read/write ratio 100.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.4", "Clustering effect under R/W ratio 100",
      "clustering without I/O limitation performs consistently best when "
      "reads dominate: the writers' clustering I/O is amortised over many "
      "reads");

  const auto grid = bench::RunClusteringGrid(core::DensitySweep(100.0));
  bench::PrintGrid(grid);

  const size_t kNone = 0, kNoLimit = 4;
  bool no_limit_best = true;
  for (size_t w = 0; w < grid.workload_labels.size(); ++w) {
    for (size_t p = 1; p < grid.policy_labels.size(); ++p) {
      if (grid.At(kNoLimit, w) > 1.05 * grid.At(p, w)) no_limit_best = false;
    }
  }
  bench::ShapeCheck(
      "No_limit consistently best (within 5%) among clustering policies",
      no_limit_best);

  const double headline = grid.At(kNone, 2) / grid.At(kNoLimit, 2);
  std::printf("\nhi10-100 improvement: %.2fx\n", headline);
  bench::ShapeCheck("~3x (>=2x) improvement at high density", headline >= 2.0);
  return 0;
}
