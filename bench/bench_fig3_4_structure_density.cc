// Regenerates Figure 3.4: downward structure-density distribution per OCT
// tool, in the paper's three buckets (low 0-3, medium 4-10, high > 10).

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "oct/oct_tools.h"
#include "oct/trace_analyzer.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 3.4", "OCT tool structure-density distribution",
      "most tools are dominated by low density (0-3 objects per "
      "structural retrieval); VEM has the highest density (it displays "
      "everything attached to a composite); upward accesses almost "
      "always return one object");

  oct::OctWorkbench workbench(7);
  workbench.RunAll(bench::FastMode() ? 3 : 12);
  const auto summaries = oct::SummarizeByTool(workbench.trace().sessions());

  TablePrinter table({"tool", "low (0-3)", "med (4-10)", "high (>10)",
                      "upward single-object"});
  double vem_high = 0;
  int low_dominated = 0;
  double others_max_high = 0;
  for (const auto& t : summaries) {
    table.AddRow({t.tool, FormatDouble(t.density_low * 100, 1) + "%",
                  FormatDouble(t.density_med * 100, 1) + "%",
                  FormatDouble(t.density_high * 100, 1) + "%",
                  FormatDouble(t.upward_single_fraction * 100, 1) + "%"});
    if (t.tool == "vem") {
      vem_high = t.density_high;
    } else {
      others_max_high = std::max(others_max_high, t.density_high);
    }
    if (t.density_low > 0.5) ++low_dominated;
  }
  table.Print(std::cout);

  bench::ShapeCheck("most tools dominated by low density", low_dominated >= 7);
  bench::ShapeCheck("VEM has the highest high-density share",
                    vem_high > others_max_high);
  return 0;
}
