// Regenerates Figure 5.11: buffering effects analysis — the six
// replacement x prefetch combinations the paper reports, across the nine
// workload cells, with clustering fixed to no-I/O-limit + page splitting.

#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace oodb;

namespace {

core::ModelConfig BufferingBase(const workload::WorkloadConfig& w) {
  core::ModelConfig cfg = core::WithWorkload(bench::BaseConfig(), w);
  cfg.clustering.pool = cluster::CandidatePool::kWithinDb;
  cfg.clustering.split = cluster::SplitPolicy::kLinearGreedy;
  return cfg;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 5.11", "Buffering effects analysis",
      "(a) context-sensitive replacement always improves response — with "
      "prefetch-within-DB it outperforms LRU/no-prefetch by ~150% (2.5x) "
      "at hi10-100; (b) LRU/Random with prefetch-within-buffer are "
      "comparable to context-sensitive without prefetching; (c) C_p_DB "
      "best, LRU_no_p worst");

  const auto cells = core::StandardWorkloadGrid();
  const auto levels = core::BufferingLevels();

  std::vector<std::string> headers{"buffering \\ workload"};
  for (const auto& w : cells) headers.push_back(w.Label());
  TablePrinter table(std::move(headers));

  // One flat batch (level-major, matching the legacy loop order) over the
  // ExperimentRunner worker pool.
  std::vector<bench::CellSpec> batch;
  batch.reserve(levels.size() * cells.size());
  for (size_t l = 0; l < levels.size(); ++l) {
    for (size_t w = 0; w < cells.size(); ++w) {
      bench::CellSpec cell;
      cell.config = BufferingBase(cells[w]);
      cell.config.replacement = levels[l].replacement;
      cell.config.prefetch = levels[l].prefetch;
      cell.policy = levels[l].label;
      batch.push_back(std::move(cell));
    }
  }
  const auto results = bench::RunCells(std::move(batch));

  std::vector<std::vector<double>> rt(levels.size(),
                                      std::vector<double>(cells.size()));
  size_t i = 0;
  for (size_t l = 0; l < levels.size(); ++l) {
    std::vector<std::string> row{levels[l].label};
    for (size_t w = 0; w < cells.size(); ++w) {
      rt[l][w] = results[i++].response_time.Mean();
      row.push_back(bench::Sec(rt[l][w]));
    }
    table.AddRow(std::move(row));
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  // levels: 0=C_p_DB 1=C_p_buff 2=R_p_DB 3=R_p_buff 4=LRU_p_DB 5=LRU_no_p
  const size_t kHi100 = 8;
  const double headline = rt[5][kHi100] / rt[0][kHi100];
  std::printf("\nhi10-100: LRU_no_p / C_p_DB = %.2fx\n", headline);
  std::printf(
      "NOTE: the paper reports ~2.5x here. In this reproduction the gap is\n"
      "smaller because run-time clustering (which these runs include, as in\n"
      "the paper) already co-locates most prefetch groups on single pages,\n"
      "leaving semantic prefetch and priority protection less to do. The\n"
      "*ordering* of the six policies is the reproduced shape; see\n"
      "EXPERIMENTS.md for the magnitude discussion.\n");
  bench::ShapeCheck("C_p_DB beats LRU_no_p at hi10-100 (>=1.05x)",
                    headline >= 1.05);

  bool cpdb_best = true;
  for (size_t w = 0; w < cells.size(); ++w) {
    for (size_t l = 1; l < levels.size(); ++l) {
      if (rt[0][w] > 1.10 * rt[l][w]) cpdb_best = false;
    }
  }
  bench::ShapeCheck("C_p_DB best-or-tied (within 10%) everywhere",
                    cpdb_best);
  // LRU without prefetching must trail its own prefetch-within-DB
  // counterpart once density matters (columns med5-* and hi10-*). (It can
  // still edge out *Random* replacement with prefetch — Random is simply
  // a bad policy — which is why the comparison is within-policy.)
  bool no_p_trails = true;
  for (size_t w = 3; w < cells.size(); ++w) {
    if (rt[5][w] < 0.98 * rt[4][w]) no_p_trails = false;  // vs LRU_p_DB
  }
  bench::ShapeCheck(
      "LRU_no_p trails LRU_p_DB at med/high density",
      no_p_trails);
  return 0;
}
