// Contention scaling under the strict-2PL lock manager (src/cc/): the
// OCT engineering workload at med5 density and R/W=5, swept from 200 to
// 2000 interactive users against No_Clustering and the paper's run-time
// clustering (No_limit). R/W=5 keeps exclusive locks frequent, so lock
// waits, deadlock timeouts, and abort/retry cycles all show up in the
// response-time curve rather than only in the counters.
//
// The fast grid is byte-identical to the committed scenario
// (bench/scenarios/oct_contention.scenario.json -> BENCH_oct_contention
// .jsonl); ci.sh gates both against each other.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace oodb;

namespace {

/// The two clustering endpoints of the sweep: arrival-order placement
/// and the unlimited-exam run-time clusterer (Figure 5.1's best policy).
std::vector<cluster::ClusterConfig> ContentionPolicies() {
  std::vector<cluster::ClusterConfig> pools(2);
  pools[0].pool = cluster::CandidatePool::kNoClustering;
  pools[1].pool = cluster::CandidatePool::kWithinDb;
  return pools;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "OCT contention",
      "Thousand-user contention scaling under strict 2PL",
      "(a) mean response time rises with the user population for every "
      "clustering policy — lock waits and abort/retry cycles add to the "
      "I/O path; (b) run-time clustering (No_limit) keeps its lead over "
      "No_Clustering at every population (fewer pages touched means "
      "fewer latch and lock conflicts); (c) aborts, retries, and lock "
      "waits are all nonzero by 1000 users");

  const std::vector<int> user_axis = {200, 1000, 2000};
  const auto pools = ContentionPolicies();

  // Users outermost, then clustering — the scenario's axis order, so the
  // JSONL records line up byte-for-byte with the committed baseline.
  std::vector<bench::CellSpec> batch;
  for (const int users : user_axis) {
    for (const auto& pool : pools) {
      bench::CellSpec cell;
      cell.config = bench::BaseConfig();
      cell.config.warmup_transactions = bench::FastMode() ? 50 : 100;
      cell.config.measured_transactions = bench::FastMode() ? 300 : 1200;
      cell.config.workload.density = workload::StructureDensity::kMed5;
      cell.config.database.density = workload::StructureDensity::kMed5;
      cell.config.workload.read_write_ratio = 5.0;
      cell.config.clustering = pool;
      cell.config.num_users = users;
      cell.config.cc.enabled = true;
      cell.config.cc.lock_timeout_s = 0.5;
      // Scenario label scheme: users axis prefixes the policy label.
      cell.policy = std::to_string(users) + "users_" + pool.Label();
      batch.push_back(std::move(cell));
    }
  }
  const auto results = bench::RunCells(std::move(batch));
  const auto at = [&](size_t u, size_t p) -> const core::RunResult& {
    return results[u * pools.size() + p];
  };

  bench::ClusteringGrid grid;
  for (const auto& pool : pools) grid.policy_labels.push_back(pool.Label());
  for (const int users : user_axis) {
    grid.workload_labels.push_back(std::to_string(users) + "users");
  }
  for (size_t p = 0; p < pools.size(); ++p) {
    std::vector<double> row;
    for (size_t u = 0; u < user_axis.size(); ++u) {
      row.push_back(at(u, p).response_time.Mean());
    }
    grid.response.push_back(std::move(row));
  }
  bench::PrintGrid(grid);

  std::printf("\n%-16s %9s %7s %8s %8s %11s %11s\n", "cell", "abort%",
              "aborts", "retries", "giveups", "lock_waits", "latch_waits");
  for (size_t u = 0; u < user_axis.size(); ++u) {
    for (size_t p = 0; p < pools.size(); ++p) {
      const auto& r = at(u, p);
      std::printf("%5dusers %-6s %8.1f%% %7llu %8llu %8llu %11llu %11llu\n",
                  user_axis[u], p == 0 ? "none" : "clust",
                  100.0 * r.cc_abort_rate,
                  (unsigned long long)r.cc_txn_aborts,
                  (unsigned long long)r.cc_txn_retries,
                  (unsigned long long)r.cc_txn_giveups,
                  (unsigned long long)r.cc_lock_waits,
                  (unsigned long long)r.cc_latch_waits);
    }
  }

  bool rises = true;
  for (size_t p = 0; p < pools.size(); ++p) {
    for (size_t u = 1; u < user_axis.size(); ++u) {
      if (grid.At(p, u) <= grid.At(p, u - 1)) rises = false;
    }
  }
  bench::ShapeCheck(
      "mean response time rises with the user population under every "
      "clustering policy",
      rises);

  bool clustering_leads = true;
  for (size_t u = 0; u < user_axis.size(); ++u) {
    if (grid.At(1, u) >= grid.At(0, u)) clustering_leads = false;
  }
  bench::ShapeCheck(
      "run-time clustering (No_limit) beats No_Clustering at every "
      "user population",
      clustering_leads);

  uint64_t aborts = 0, retries = 0, lock_waits = 0, latch_waits = 0;
  for (const auto& r : results) {
    aborts += r.cc_txn_aborts;
    retries += r.cc_txn_retries;
    lock_waits += r.cc_lock_waits;
    latch_waits += r.cc_latch_waits;
  }
  std::printf("\ngrid totals: aborts %llu, retries %llu, lock_waits %llu, "
              "latch_waits %llu\n",
              (unsigned long long)aborts, (unsigned long long)retries,
              (unsigned long long)lock_waits,
              (unsigned long long)latch_waits);
  bench::ShapeCheck(
      "contention machinery engages across the grid: aborts, retries, "
      "lock waits, and latch waits all nonzero",
      aborts > 0 && retries > 0 && lock_waits > 0 && latch_waits > 0);

  const double low_rate = at(0, 0).cc_abort_rate;
  const double high_rate = at(user_axis.size() - 1, 0).cc_abort_rate;
  std::printf("No_Clustering abort rate: 200users %.3f -> 2000users %.3f\n",
              low_rate, high_rate);
  bench::ShapeCheck(
      "the No_Clustering abort rate grows from 200 to 2000 users",
      high_rate > low_rate);
  return 0;
}
