// Regenerates Table 5.1: the read/write-ratio break-even points at which
// No_Clustering matches clustering without I/O limitation, per structure
// density. The paper reports 3.0 / 3.6 / 4.3 for low / med / high.

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"

using namespace oodb;

namespace {

// Mean response of one (density, rw, policy) cell.
double Cell(workload::StructureDensity density, double rw,
            cluster::CandidatePool pool) {
  workload::WorkloadConfig w;
  w.density = density;
  w.read_write_ratio = rw;
  core::ModelConfig cfg = core::WithWorkload(bench::BaseConfig(), w);
  cfg.clustering.pool = pool;
  return bench::MeanResponse(cfg);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 5.1", "Read/write-ratio break-even points",
      "the ratio at which clustering starts to pay off grows with "
      "structure density (paper: 3.0 / 3.6 / 4.3), because denser "
      "structures mean more writer I/O during the clustering phase");

  const std::vector<double> ratios = bench::FastMode()
                                         ? std::vector<double>{1, 3, 6}
                                         : std::vector<double>{0.5, 1, 2,
                                                               3, 4, 6, 8};
  const workload::StructureDensity densities[] = {
      workload::StructureDensity::kLow3, workload::StructureDensity::kMed5,
      workload::StructureDensity::kHigh10};

  TablePrinter table({"density", "R/W", "No_Clustering", "No_limit",
                      "clustering wins?"});
  std::vector<double> breakevens;
  for (auto density : densities) {
    double breakeven = ratios.front();
    bool crossed = false;
    double prev_rw = 0, prev_diff = 0;
    for (double rw : ratios) {
      const double none = Cell(density, rw, cluster::CandidatePool::kNoClustering);
      const double clustered = Cell(density, rw, cluster::CandidatePool::kWithinDb);
      const double diff = none - clustered;
      table.AddRow({workload::StructureDensityName(density),
                    FormatDouble(rw, 1), bench::Sec(none),
                    bench::Sec(clustered), diff > 0 ? "yes" : "no"});
      if (!crossed && diff > 0) {
        // Linear interpolation of the crossing between prev_rw and rw.
        if (prev_rw > 0 && prev_diff < 0) {
          breakeven = prev_rw + (rw - prev_rw) * (-prev_diff) /
                                    (diff - prev_diff);
        } else {
          breakeven = rw;
        }
        crossed = true;
      }
      prev_rw = rw;
      prev_diff = diff;
    }
    breakevens.push_back(crossed ? breakeven : -1);
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nEstimated break-even R/W ratios (paper: 3.0, 3.6, 4.3):\n");
  const char* names[] = {"low-3", "med-5", "high-10"};
  for (size_t i = 0; i < breakevens.size(); ++i) {
    if (breakevens[i] < 0) {
      std::printf("  %-8s: clustering already wins at the lowest tested "
                  "ratio\n", names[i]);
    } else {
      std::printf("  %-8s: %.1f\n", names[i], breakevens[i]);
    }
  }
  bench::ShapeCheck(
      "clustering wins at every density once R/W >= 5",
      Cell(workload::StructureDensity::kHigh10, 6,
           cluster::CandidatePool::kNoClustering) >
          Cell(workload::StructureDensity::kHigh10, 6,
               cluster::CandidatePool::kWithinDb));
  return 0;
}
