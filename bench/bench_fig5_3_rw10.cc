// Regenerates Figure 5.3: clustering effect under read/write ratio 10.

#include <cstdio>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.3", "Clustering effect under R/W ratio 10",
      "the 10-I/O limit behaves like no I/O limit at medium density "
      "(the limit exceeds the maximum candidate count); response under "
      "any clustering rises slowly with density while No_Clustering "
      "rises sharply");

  const auto grid = bench::RunClusteringGrid(core::DensitySweep(10.0));
  bench::PrintGrid(grid);

  const size_t kNone = 0, k10Io = 3, kNoLimit = 4;
  bench::ShapeCheck(
      "10_IO_limit ~= No_limit at medium density (within 10%)",
      grid.At(k10Io, 1) <= 1.10 * grid.At(kNoLimit, 1) &&
          grid.At(kNoLimit, 1) <= 1.10 * grid.At(k10Io, 1));

  const double none_rise = grid.At(kNone, 2) / grid.At(kNone, 0);
  const double clustered_rise = grid.At(kNoLimit, 2) / grid.At(kNoLimit, 0);
  std::printf("\nresponse rise low->high density: none %.2fx, clustered %.2fx\n",
              none_rise, clustered_rise);
  bench::ShapeCheck(
      "No_Clustering rises much more steeply with density than clustering",
      none_rise > 1.25 * clustered_rise);
  return 0;
}
