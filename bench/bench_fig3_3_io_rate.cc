// Regenerates Figure 3.3: object (logical) I/O rate of the ten OCT tools —
// all logical reads and writes divided by the session time.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "oct/oct_tools.h"
#include "oct/trace_analyzer.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 3.3", "OCT tools' object I/O rate (logical ops / second)",
      "batch tools (the routers and simulators) run at substantially "
      "higher I/O rates than the interactive editor VEM; a wide spread "
      "identifies the most I/O-intensive tools");

  oct::OctWorkbench workbench(7);
  workbench.RunAll(bench::FastMode() ? 3 : 12);
  const auto summaries = oct::SummarizeByTool(workbench.trace().sessions());

  TablePrinter table({"tool", "ops", "session seconds", "I/O per second"});
  double vem_rate = 0, max_rate = 0;
  for (const auto& t : summaries) {
    const double secs =
        t.io_rate > 0
            ? static_cast<double>(t.total_reads + t.total_writes) / t.io_rate
            : 0;
    table.AddRow({t.tool, std::to_string(t.total_reads + t.total_writes),
                  FormatDouble(secs, 1), FormatDouble(t.io_rate, 1)});
    if (t.tool == "vem") vem_rate = t.io_rate;
    max_rate = std::max(max_rate, t.io_rate);
  }
  table.Print(std::cout);

  bench::ShapeCheck("interactive VEM has the lowest I/O rate",
                    vem_rate > 0 && vem_rate <= max_rate / 3);
  bench::ShapeCheck("I/O rates spread by more than 3x across tools",
                    max_rate > 3 * vem_rate);
  return 0;
}
