#ifndef SEMCLUST_BENCH_BENCH_PREFETCH_COMMON_H_
#define SEMCLUST_BENCH_BENCH_PREFETCH_COMMON_H_

#include "bench_common.h"

/// \file
/// Shared driver for Figures 5.12-5.14: the three prefetch policies under
/// one fixed buffer-replacement algorithm, across the nine workloads.

namespace oodb::bench {

/// Runs the figure for `replacement` and prints table + shape checks.
/// Returns 0 (process exit code).
int RunPrefetchFigure(const std::string& figure,
                      buffer::ReplacementPolicy replacement);

}  // namespace oodb::bench

#endif  // SEMCLUST_BENCH_BENCH_PREFETCH_COMMON_H_
