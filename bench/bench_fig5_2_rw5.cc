// Regenerates Figure 5.2: clustering effect under read/write ratio 5,
// across the three structure densities.

#include <cstdio>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.2", "Clustering effect under R/W ratio 5",
      "at R/W 5 the 2-I/O-limit policy gives the best (or tied-best) "
      "response at every density: the writer's unlimited exam I/O cannot "
      "be amortised by so few reads");

  const auto grid = bench::RunClusteringGrid(core::DensitySweep(5.0));
  bench::PrintGrid(grid);

  const size_t k2Io = 2, kNoLimit = 4, kNone = 0;
  bool two_io_competitive = true;
  for (size_t w = 0; w < grid.workload_labels.size(); ++w) {
    // 2_IO_limit must be within 10% of the best clustering policy.
    double best = grid.At(1, w);
    for (size_t p = 1; p < grid.policy_labels.size(); ++p) {
      best = std::min(best, grid.At(p, w));
    }
    if (grid.At(k2Io, w) > 1.10 * best) two_io_competitive = false;
  }
  bench::ShapeCheck("2_IO_limit best-or-tied (within 10%) at every density",
                    two_io_competitive);
  bench::ShapeCheck(
      "2_IO_limit matches No_limit at low density (within 10%)",
      grid.At(k2Io, 0) <= 1.10 * grid.At(kNoLimit, 0));
  bench::ShapeCheck("any clustering beats none at high density",
                    grid.At(kNoLimit, 2) < grid.At(kNone, 2));
  return 0;
}
