// Regenerates Figure 6.2: pairwise interaction analysis of the control
// parameters via the paper's parallel-lines test on X-Y diagrams.

#include <cstdio>
#include <sstream>

#include "analysis/factorial.h"
#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 6.2", "Interaction analysis (parallel-lines test)",
      "no major interactions between any two factors (the controls are "
      "nearly independent); minor interactions include density x "
      "buffering, R/W x clustering, density x clustering, and splitting "
      "x clustering; buffering x clustering and density x R/W show none");

  core::ModelConfig base = bench::BaseConfig();
  base.warmup_transactions = 100;
  base.measured_transactions = bench::FastMode() ? 200 : 600;

  const auto factors = analysis::StandardFactors();
  analysis::FactorialDesign design(base, factors);
  design.set_cell_observer([](uint32_t mask, const core::ModelConfig& cfg,
                              const core::RunResult& result, double wall_s) {
    bench::Report().Record("cell-" + std::to_string(mask),
                           cfg.clustering.Label(), cfg.workload.Label(),
                           result, wall_s);
  });
  design.Run();

  TablePrinter table({"factor pair", "ll (ms)", "lh (ms)", "hl (ms)",
                      "hh (ms)", "class"});
  int majors = 0, minors = 0, nones = 0;
  for (size_t a = 0; a < factors.size(); ++a) {
    for (size_t b = a + 1; b < factors.size(); ++b) {
      const auto cell = design.Interaction(a, b);
      const auto cls = analysis::ClassifyInteraction(cell);
      table.AddRow({factors[a].name + " x " + factors[b].name,
                    FormatDouble(cell.low_low * 1000, 1),
                    FormatDouble(cell.low_high * 1000, 1),
                    FormatDouble(cell.high_low * 1000, 1),
                    FormatDouble(cell.high_high * 1000, 1),
                    analysis::InteractionClassName(cls)});
      switch (cls) {
        case analysis::InteractionClass::kMajor:
          ++majors;
          break;
        case analysis::InteractionClass::kMinor:
          ++minors;
          break;
        default:
          ++nones;
          break;
      }
    }
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nclassified: %d none, %d minor, %d major (28 pairs)\n",
              nones, minors, majors);
  bench::ShapeCheck("few-to-no major interactions (<= 3 of 28)",
                    majors <= 3);
  bench::ShapeCheck("a mix of none and minor interactions exists",
                    nones > 0 && minors > 0);
  return 0;
}
