// Regenerates Figure 5.14: prefetching effect under Random buffer
// replacement.

#include "bench_prefetch_common.h"

int main() {
  return oodb::bench::RunPrefetchFigure(
      "Figure 5.14", oodb::buffer::ReplacementPolicy::kRandom);
}
