// Regenerates Figure 5.5: clustering effect on transaction-logging I/Os.
// When related objects share a page, multiple updates within one
// transaction before-image the same page only once, so the log flushes
// less.

#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.5", "Clustering effect on transaction-logging I/Os",
      "at R/W 5 (write-heavy enough to matter), clustering produces "
      "fewer physical logging I/Os than No_Clustering at every density, "
      "because co-located updates share before-imaged pages");

  TablePrinter table({"density", "policy", "log-flush I/Os",
                      "before-images", "per logical write"});
  double none_per_write[3] = {0, 0, 0};
  double clustered_per_write[3] = {0, 0, 0};
  int d = 0;
  for (auto density :
       {workload::StructureDensity::kLow3, workload::StructureDensity::kMed5,
        workload::StructureDensity::kHigh10}) {
    for (auto pool : {cluster::CandidatePool::kNoClustering,
                      cluster::CandidatePool::kWithinDb}) {
      workload::WorkloadConfig w;
      w.density = density;
      w.read_write_ratio = 5;
      core::ModelConfig cfg = core::WithWorkload(bench::BaseConfig(), w);
      cfg.clustering.pool = pool;
      const core::RunResult r = core::RunCell(cfg);
      const double per_write =
          static_cast<double>(r.log_flush_ios) /
          std::max<uint64_t>(1, r.logical_writes);
      table.AddRow({workload::StructureDensityName(density),
                    cluster::CandidatePoolName(pool),
                    std::to_string(r.log_flush_ios),
                    std::to_string(r.log_before_images),
                    FormatDouble(per_write, 4)});
      if (pool == cluster::CandidatePool::kNoClustering) {
        none_per_write[d] = per_write;
      } else {
        clustered_per_write[d] = per_write;
      }
    }
    ++d;
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  bool fewer_everywhere = true;
  for (int i = 0; i < 3; ++i) {
    if (clustered_per_write[i] > none_per_write[i]) fewer_everywhere = false;
  }
  bench::ShapeCheck(
      "clustering logs no more I/O per write than No_Clustering at every "
      "density",
      fewer_everywhere);
  return 0;
}
