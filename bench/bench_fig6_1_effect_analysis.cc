// Regenerates Figure 6.1: overall two-level factorial effect analysis of
// the eight control parameters. Runs the full 2^8 design (reduced run
// lengths per cell) and reports |effect| for every main effect and
// interaction contrast.

#include <cmath>
#include <cstdio>
#include <sstream>

#include "analysis/factorial.h"
#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 6.1", "Overall effect analysis (2-level factorial)",
      "structure density and buffering policy influence response time the "
      "most; the page-splitting algorithm has the least influence; most "
      "combined effects cluster near zero");

  core::ModelConfig base = bench::BaseConfig();
  // 256 cells: shorten each run to keep the full design tractable.
  base.warmup_transactions = 100;
  base.measured_transactions = bench::FastMode() ? 200 : 600;

  analysis::FactorialDesign design(base, analysis::StandardFactors());
  design.set_cell_observer([](uint32_t mask, const core::ModelConfig& cfg,
                              const core::RunResult& result, double wall_s) {
    bench::Report().Record("cell-" + std::to_string(mask),
                           cfg.clustering.Label(), cfg.workload.Label(),
                           result, wall_s);
  });
  design.Run();

  TablePrinter mains({"factor", "effect (ms)", "|effect| (ms)"});
  const auto main_effects = design.MainEffects();
  for (const auto& e : main_effects) {
    mains.AddRow({e.name, FormatDouble(e.effect * 1000, 2),
                  FormatDouble(std::abs(e.effect) * 1000, 2)});
  }
  std::ostringstream os;
  mains.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nTop 12 contrasts by |effect| (all orders):\n");
  TablePrinter top({"contrast", "order", "effect (ms)"});
  const auto all = design.AllEffects();
  for (size_t i = 0; i < all.size() && i < 12; ++i) {
    top.AddRow({all[i].name, std::to_string(all[i].order),
                FormatDouble(all[i].effect * 1000, 2)});
  }
  std::ostringstream os2;
  top.Print(os2);
  std::fputs(os2.str().c_str(), stdout);

  // Count contrasts within 10% of the largest: the "centre blob" claim.
  const double largest = std::abs(all.front().effect);
  int near_zero = 0;
  for (const auto& e : all) {
    if (std::abs(e.effect) < 0.1 * largest) ++near_zero;
  }
  std::printf("\n%d of %zu contrasts are within 10%% of zero (centre blob)\n",
              near_zero, all.size());

  // Shape checks against the paper's two key observations.
  auto abs_main = [&](int i) { return std::abs(main_effects[i].effect); };
  const double density = abs_main(0);      // F
  const double splitting = abs_main(3);    // I
  const double replacement = abs_main(5);  // K
  const double prefetch = abs_main(7);     // M
  const double buffering = std::max(replacement, prefetch);
  double max_other_main = 0;
  for (int i = 0; i < 8; ++i) {
    if (i == 0 || i == 5 || i == 7) continue;
    max_other_main = std::max(max_other_main, abs_main(i));
  }
  bench::ShapeCheck(
      "structure density is among the strongest main effects",
      density >= 0.5 * largest);
  bench::ShapeCheck(
      "buffering policy (replacement/prefetch) is a major effect",
      buffering >= 0.3 * density);
  bench::ShapeCheck("page splitting has the least influence of all mains",
                    splitting <= density && splitting <= buffering &&
                        splitting <= max_other_main * 1.05);
  bench::ShapeCheck("most contrasts cluster near zero (>60%)",
                    near_zero > static_cast<int>(all.size() * 6 / 10));
  return 0;
}
