// Regenerates Table 4.1: the simulation parameters — static parameters
// A-E and the operating levels of the eight control parameters F-M —
// together with this reproduction's scaled values.

#include <iostream>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Table 4.1", "Simulation parameters",
      "static parameters A-E fixed for all runs; eight control parameters "
      "F-M with the listed operating levels");

  core::ModelConfig cfg = bench::BaseConfig();

  TablePrinter statics({"label", "static parameter", "paper value",
                        "this run (scaled)"});
  statics.AddRow({"A", "Database Size", "500 MB",
                  std::to_string(cfg.database_bytes >> 20) + " MB"});
  statics.AddRow({"B", "Page Size", "4 KB",
                  std::to_string(cfg.page_size_bytes / 1024) + " KB"});
  statics.AddRow({"C", "Number of Users", "10",
                  std::to_string(cfg.num_users)});
  statics.AddRow({"D", "Number of Disks", "10",
                  std::to_string(cfg.num_disks)});
  statics.AddRow({"E", "Think Time", "4 seconds",
                  FormatDouble(cfg.think_time_s, 1) + " seconds"});
  statics.Print(std::cout);
  std::cout << '\n';

  TablePrinter controls({"label", "control parameter", "operating levels",
                         "this run (scaled)"});
  controls.AddRow({"F", "Structure Density", "low-3, med-5, high-10",
                   "same (DB fan-out shaped per level)"});
  controls.AddRow({"G", "Read-write Ratio", "5, 10, 100", "same"});
  controls.AddRow({"H", "Clustering Policy",
                   "No_Cluster, Cluster_within_Buffer, 2_IO_limit, "
                   "10_IO_limit, No_limit",
                   "same"});
  controls.AddRow({"I", "Page Splitting Policy", "No, Greedy, Optimal",
                   "No_Splitting, Linear_Split, NP_Split"});
  controls.AddRow({"J", "User Hint Policy", "No_hint, User_hint", "same"});
  controls.AddRow({"K", "Buffer Replacement Policy",
                   "LRU, Context-sensitive, Random", "same"});
  controls.AddRow(
      {"L", "Buffer Pool Size", "100, 1000, 10000 buffers",
       std::to_string(cfg.BufferSmall()) + ", " +
           std::to_string(cfg.BufferMedium()) + ", " +
           std::to_string(cfg.BufferLarge()) +
           " (same buffer:DB ratios)"});
  controls.AddRow({"M", "Prefetch Policy",
                   "No_prefetch, Prefetch_within_buffer_pool, "
                   "Prefetch_within_Database",
                   "same"});
  controls.Print(std::cout);

  bench::ShapeCheck("buffer levels preserve the paper's buffer:DB ratios",
                    cfg.BufferSmall() < cfg.BufferMedium() &&
                        cfg.BufferMedium() < cfg.BufferLarge());
  return 0;
}
