// Ablation: static (offline) clustering vs the paper's run-time
// clustering. §2.1: "For static clustering, the system is quiesced, and
// the database administrator decides on a partitioning of objects. When
// high availability is required by applications such as manufacturing,
// static clustering is not effective." This bench quantifies the
// trade-off: the static layout's quality and its quiesce cost (the page
// I/O of the reorganisation, i.e. downtime) against run-time clustering,
// which approaches the same quality with zero downtime, plus the epoch
// series under a write-heavy workload.

#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "cluster/static_clusterer.h"
#include "core/engineering_db.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Ablation", "Static (quiesce-and-reorganise) vs run-time clustering",
      "static clustering achieves excellent locality but costs a full "
      "database rewrite with the system quiesced; run-time clustering "
      "approaches it with zero downtime and keeps maintaining itself as "
      "writes restructure the design");

  constexpr int kEpochs = 4;
  struct Variant {
    const char* name;
    cluster::CandidatePool pool;
    bool reorganize;
  } variants[] = {
      {"No_Clustering", cluster::CandidatePool::kNoClustering, false},
      {"Static_reorganised", cluster::CandidatePool::kNoClustering, true},
      {"Dynamic_(No_limit)", cluster::CandidatePool::kWithinDb, false},
  };

  std::vector<std::string> headers{"layout \\ epoch"};
  for (int e = 1; e <= kEpochs; ++e) {
    headers.push_back("epoch " + std::to_string(e));
  }
  headers.push_back("mean");
  TablePrinter table(std::move(headers));

  // The three layout variants run as one parallel batch.
  std::vector<bench::CellSpec> batch;
  for (const Variant& v : variants) {
    bench::CellSpec cell;
    core::ModelConfig& cfg = cell.config;
    cfg = bench::BaseConfig();
    cfg.workload.density = workload::StructureDensity::kMed5;
    cfg.database.density = cfg.workload.density;
    cfg.workload.read_write_ratio = 3;  // write-heavy: structure churns
    cfg.measured_transactions = bench::FastMode() ? 1200 : 4000;
    cfg.measurement_epochs = kEpochs;
    cfg.clustering.pool = v.pool;
    cfg.clustering.split = v.pool == cluster::CandidatePool::kWithinDb
                               ? cluster::SplitPolicy::kLinearGreedy
                               : cluster::SplitPolicy::kNoSplit;
    cfg.static_reorganize_after_build = v.reorganize;
    cell.policy = v.name;
    batch.push_back(std::move(cell));
  }
  const auto results = bench::RunCells(std::move(batch));

  double static_mean = 0, dynamic_mean = 0, none_mean = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    const Variant& v = variants[i];
    const core::RunResult& r = results[i];
    std::vector<std::string> row{v.name};
    for (const auto& epoch : r.response_epochs) {
      row.push_back(bench::Sec(epoch.Mean()));
    }
    row.push_back(bench::Sec(r.response_time.Mean()));
    table.AddRow(std::move(row));
    if (v.reorganize) {
      static_mean = r.response_time.Mean();
    } else if (v.pool == cluster::CandidatePool::kWithinDb) {
      dynamic_mean = r.response_time.Mean();
    } else {
      none_mean = r.response_time.Mean();
    }
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  // The quiesce cost: rebuild one database arrival-order and measure the
  // reorganisation's page I/O at the modeled disk's service time.
  {
    core::ModelConfig cfg = bench::BaseConfig();
    cfg.workload.density = workload::StructureDensity::kMed5;
    cfg.database.density = cfg.workload.density;
    cfg.clustering.pool = cluster::CandidatePool::kNoClustering;
    core::EngineeringDbModel model(cfg);
    // Reorganise a copy of the layout state (the model is not run).
    obj::ObjectGraph& graph = const_cast<obj::ObjectGraph&>(model.graph());
    store::StorageManager& storage =
        const_cast<store::StorageManager&>(model.storage());
    cluster::AffinityModel affinity(&graph.lattice());
    cluster::StaticClusterer reorganizer(&graph, &storage, &affinity);
    const auto report = reorganizer.Reorganize();
    const double downtime =
        static_cast<double>(report.page_writes) *
        model.io().PageServiceTime() / model.config().num_disks;
    std::printf("\nreorganisation: %llu objects moved, %llu page I/Os ->"
                " ~%.0f s of quiesced downtime at the modeled disks\n"
                "run-time clustering: 0 s of downtime\n",
                static_cast<unsigned long long>(report.objects_moved),
                static_cast<unsigned long long>(report.page_writes),
                downtime);
    bench::ShapeCheck(
        "the static reorganisation implies substantial quiesced downtime "
        "(> 60 simulated seconds even at 1/10 scale)",
        downtime > 60);
  }

  bench::ShapeCheck("static reorganisation beats No_Clustering",
                    static_mean < none_mean);
  bench::ShapeCheck(
      "run-time clustering reaches within 1.6x of the freshly reorganised "
      "static layout with zero downtime",
      dynamic_mean <= 1.6 * static_mean);
  return 0;
}
