// OCB policy grid: drives the generic object benchmark (src/ocb/) across
// the full Table 4.1 clustering axis — the five clustering policies of
// Figure 5.1 against three reference-locality distributions (uniform,
// gaussian, zipf) at R/W ratios 10 and 100. The engineering-database
// figures show the policies on one CAD workload; this grid asks whether
// the same ranking survives on a structurally different object graph.
//
// Emits the standard BenchReport JSONL (SEMCLUST_BENCH_JSON), so
// `tools/ocb_compare` can rank the policies here against any OCT bench's
// output (e.g. BENCH_fig5_1_fast.jsonl).

#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "dyn/dyn_config.h"
#include "ocb/ocb_config.h"

using namespace oodb;

namespace {

/// The grid's shared OCB database: a 16-class hierarchy whose instance
/// graph is ~2.5x the medium buffer pool, so clustering quality actually
/// shows up as physical I/O (a memory-resident graph would make
/// No_Clustering trivially optimal).
ocb::OcbConfig BaseOcb() {
  ocb::OcbConfig cfg;
  cfg.enabled = true;
  cfg.classes = 16;
  cfg.hierarchy_depth = 4;
  cfg.instances = bench::FastMode() ? 6000 : 12000;
  cfg.refs_per_object = 3;
  cfg.partitions = 16;
  cfg.set_lookup_size = bench::FastMode() ? 4 : 8;
  cfg.traversal_depth = bench::FastMode() ? 2 : 3;
  return cfg;
}

/// Per-epoch co-located edge counts from a cell's telemetry series (one
/// entry per epoch-boundary placement audit).
std::vector<uint64_t> ColocatedByEpoch(const core::RunResult& result) {
  std::vector<uint64_t> counts;
  for (const auto& sample : result.series.samples) {
    if (!sample.epoch_boundary || !sample.placement.has_value()) continue;
    counts.push_back(sample.placement->colocated);
  }
  return counts;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "OCB grid",
      "Generic-benchmark clustering grid (OCB workload)",
      "(a) run-time clustering keeps its lead over No_Clustering on a "
      "generic object graph, strongest when reads dominate (R/W=100); "
      "(b) reference-locality skew (zipf) narrows every policy's I/O "
      "because the popular objects stay buffer-resident");

  const auto policies = core::ClusteringPolicyLevels();
  const std::vector<ocb::RefLocality> localities(
      std::begin(ocb::kAllRefLocalities), std::end(ocb::kAllRefLocalities));
  const std::vector<double> ratios = {10.0, 100.0};

  // One flat policy-major batch, workloads ordered locality-major then
  // ratio — the column order of the printed grid.
  std::vector<bench::CellSpec> batch;
  for (const auto& policy : policies) {
    for (const ocb::RefLocality locality : localities) {
      for (const double rw : ratios) {
        bench::CellSpec cell;
        cell.config = bench::BaseConfig();
        cell.config.clustering = policy;
        cell.config.ocb = BaseOcb();
        cell.config.ocb.locality = locality;
        cell.config.workload.read_write_ratio = rw;
        batch.push_back(std::move(cell));
      }
    }
  }
  const auto results = bench::RunCells(std::move(batch));

  bench::ClusteringGrid grid;
  for (const auto& policy : policies) {
    grid.policy_labels.push_back(policy.Label());
  }
  {
    const ocb::OcbConfig base = BaseOcb();
    for (const ocb::RefLocality locality : localities) {
      ocb::OcbConfig w = base;
      w.locality = locality;
      for (const double rw : ratios) {
        grid.workload_labels.push_back(w.Label(rw));
      }
    }
  }
  size_t i = 0;
  for (size_t p = 0; p < grid.policy_labels.size(); ++p) {
    std::vector<double> row;
    for (size_t w = 0; w < grid.workload_labels.size(); ++w) {
      row.push_back(results[i++].response_time.Mean());
    }
    grid.response.push_back(std::move(row));
  }
  bench::PrintGrid(grid);

  // Columns: locality-major {uni, gauss, zipf} x ratio {10, 100}.
  const size_t kNone = 0, kNoLimit = 4;
  const size_t kUni100 = 1, kZipf100 = 5;

  const double headline =
      grid.At(kNone, kUni100) / grid.At(kNoLimit, kUni100);
  std::printf("\nocb-uni3-100: No_Clustering / No_limit = %.2fx\n", headline);
  bench::ShapeCheck(
      "clustering (No_limit) improves uniform-locality reads at R/W=100",
      headline > 1.0);

  bool reads_amortise = true;
  for (size_t w = 1; w < grid.workload_labels.size(); w += 2) {  // R/W=100
    if (grid.At(kNoLimit, w) > grid.At(kNone, w)) reads_amortise = false;
  }
  bench::ShapeCheck(
      "No_limit never loses to No_Clustering at R/W=100 (any locality)",
      reads_amortise);

  const double skew_gain =
      grid.At(kNone, kUni100) / grid.At(kNone, kZipf100);
  std::printf("No_Clustering at R/W=100: uniform / zipf = %.2fx\n",
              skew_gain);
  bench::ShapeCheck(
      "zipf reference locality is no slower than uniform under "
      "No_Clustering (popular objects stay resident)",
      skew_gain >= 1.0);

  // ---- structural-churn phase (src/dyn/) ----
  // Start from a good placement that nothing maintains at run time: the
  // offline StaticClusterer repacks a No_Clustering build, then seeded
  // delete/insert/re-reference bursts age it over six measurement epochs.
  // The placement-auditor series shows the static cell's co-located edge
  // count falling every epoch, while DSTC and OPCF (layered on the same
  // frozen placement) win part of it back by moving hot clustering units.
  std::printf("\n-- structural churn: static placement ages, DSTC/OPCF "
              "recover --\n");
  core::ModelConfig churn_base = bench::BaseConfig();
  churn_base.clustering = policies[kNone];  // No_Clustering
  churn_base.static_reorganize_after_build = true;
  churn_base.measurement_epochs = 6;
  churn_base.measured_transactions = bench::FastMode() ? 1200 : 2400;
  churn_base.ocb = BaseOcb();
  churn_base.ocb.locality = ocb::RefLocality::kZipf;
  churn_base.ocb.churn_probability = 0.5;
  churn_base.ocb.churn_burst_length = 8;
  churn_base.workload.read_write_ratio = 4.0;

  dyn::DynConfig dyn_on;
  dyn_on.observation_period = 64;
  dyn_on.trigger_threshold = 4.0;

  std::vector<bench::CellSpec> churn_batch;
  {
    bench::CellSpec cell;  // 0: frozen static placement
    cell.config = churn_base;
    churn_batch.push_back(std::move(cell));
  }
  {
    bench::CellSpec cell;  // 1: DSTC
    cell.config = churn_base;
    cell.config.clustering.dynamic = dyn_on;
    cell.config.clustering.dynamic.policy = dyn::PolicyKind::kDstc;
    churn_batch.push_back(std::move(cell));
  }
  {
    bench::CellSpec cell;  // 2: OPCF, watermark 0 (defers on any busy disk)
    cell.config = churn_base;
    cell.config.clustering.dynamic = dyn_on;
    cell.config.clustering.dynamic.policy = dyn::PolicyKind::kOpcf;
    cell.config.clustering.dynamic.opcf_queue_watermark = 0.0;
    churn_batch.push_back(std::move(cell));
  }
  {
    bench::CellSpec cell;  // 3: OPCF control, watermark unreachably high
    cell.config = churn_base;
    cell.config.clustering.dynamic = dyn_on;
    cell.config.clustering.dynamic.policy = dyn::PolicyKind::kOpcf;
    cell.config.clustering.dynamic.opcf_queue_watermark = 1e9;
    cell.cell_label = "OPCF_high_watermark/" + churn_base.WorkloadLabel();
    cell.policy = "OPCF_high_watermark";
    churn_batch.push_back(std::move(cell));
  }
  const auto churn_results = bench::RunCells(std::move(churn_batch));

  const std::vector<uint64_t> static_col = ColocatedByEpoch(churn_results[0]);
  const std::vector<uint64_t> dstc_col = ColocatedByEpoch(churn_results[1]);
  const std::vector<uint64_t> opcf_col = ColocatedByEpoch(churn_results[2]);
  const char* series_names[] = {"static", "DSTC", "OPCF"};
  const std::vector<uint64_t>* series[] = {&static_col, &dstc_col, &opcf_col};
  for (int c = 0; c < 3; ++c) {
    std::printf("co-located edges (%s):", series_names[c]);
    for (uint64_t v : *series[c]) std::printf(" %llu",
                                              (unsigned long long)v);
    std::printf("\n");
  }

  bool static_degrades = static_col.size() == 6;
  for (size_t e = 1; e < static_col.size(); ++e) {
    if (static_col[e] > static_col[e - 1]) static_degrades = false;
  }
  bench::ShapeCheck(
      "churn ages the frozen static placement: co-located edges "
      "non-increasing across all six epochs",
      static_degrades);

  bool recovers = !static_col.empty();
  if (recovers) {
    const double lost = static_cast<double>(static_col.front()) -
                        static_cast<double>(static_col.back());
    const double floor_count =
        static_cast<double>(static_col.back()) + 0.5 * lost;
    recovers = lost > 0 &&
               static_cast<double>(dstc_col.back()) >= floor_count &&
               static_cast<double>(opcf_col.back()) >= floor_count;
  }
  bench::ShapeCheck(
      "DSTC and OPCF each recover at least half the co-location the "
      "static placement lost to churn",
      recovers);

  const auto deferral = [&](size_t cell) {
    return churn_results[cell].metrics.gauge("dyn.deferral_time_s")
        .value_or(0.0);
  };
  std::printf("OPCF deferral: watermark 0 -> %.3f s, high watermark -> "
              "%.3f s\n", deferral(2), deferral(3));
  bench::ShapeCheck(
      "OPCF defers only when the queue-depth watermark is exceeded "
      "(positive at watermark 0, zero at an unreachable watermark)",
      deferral(2) > 0.0 && deferral(3) == 0.0);
  return 0;
}
