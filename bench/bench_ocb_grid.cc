// OCB policy grid: drives the generic object benchmark (src/ocb/) across
// the full Table 4.1 clustering axis — the five clustering policies of
// Figure 5.1 against three reference-locality distributions (uniform,
// gaussian, zipf) at R/W ratios 10 and 100. The engineering-database
// figures show the policies on one CAD workload; this grid asks whether
// the same ranking survives on a structurally different object graph.
//
// Emits the standard BenchReport JSONL (SEMCLUST_BENCH_JSON), so
// `tools/ocb_compare` can rank the policies here against any OCT bench's
// output (e.g. BENCH_fig5_1_fast.jsonl).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ocb/ocb_config.h"

using namespace oodb;

namespace {

/// The grid's shared OCB database: a 16-class hierarchy whose instance
/// graph is ~2.5x the medium buffer pool, so clustering quality actually
/// shows up as physical I/O (a memory-resident graph would make
/// No_Clustering trivially optimal).
ocb::OcbConfig BaseOcb() {
  ocb::OcbConfig cfg;
  cfg.enabled = true;
  cfg.classes = 16;
  cfg.hierarchy_depth = 4;
  cfg.instances = bench::FastMode() ? 6000 : 12000;
  cfg.refs_per_object = 3;
  cfg.partitions = 16;
  cfg.set_lookup_size = bench::FastMode() ? 4 : 8;
  cfg.traversal_depth = bench::FastMode() ? 2 : 3;
  return cfg;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "OCB grid",
      "Generic-benchmark clustering grid (OCB workload)",
      "(a) run-time clustering keeps its lead over No_Clustering on a "
      "generic object graph, strongest when reads dominate (R/W=100); "
      "(b) reference-locality skew (zipf) narrows every policy's I/O "
      "because the popular objects stay buffer-resident");

  const auto policies = core::ClusteringPolicyLevels();
  const std::vector<ocb::RefLocality> localities(
      std::begin(ocb::kAllRefLocalities), std::end(ocb::kAllRefLocalities));
  const std::vector<double> ratios = {10.0, 100.0};

  // One flat policy-major batch, workloads ordered locality-major then
  // ratio — the column order of the printed grid.
  std::vector<bench::CellSpec> batch;
  for (const auto& policy : policies) {
    for (const ocb::RefLocality locality : localities) {
      for (const double rw : ratios) {
        bench::CellSpec cell;
        cell.config = bench::BaseConfig();
        cell.config.clustering = policy;
        cell.config.ocb = BaseOcb();
        cell.config.ocb.locality = locality;
        cell.config.workload.read_write_ratio = rw;
        batch.push_back(std::move(cell));
      }
    }
  }
  const auto results = bench::RunCells(std::move(batch));

  bench::ClusteringGrid grid;
  for (const auto& policy : policies) {
    grid.policy_labels.push_back(policy.Label());
  }
  {
    const ocb::OcbConfig base = BaseOcb();
    for (const ocb::RefLocality locality : localities) {
      ocb::OcbConfig w = base;
      w.locality = locality;
      for (const double rw : ratios) {
        grid.workload_labels.push_back(w.Label(rw));
      }
    }
  }
  size_t i = 0;
  for (size_t p = 0; p < grid.policy_labels.size(); ++p) {
    std::vector<double> row;
    for (size_t w = 0; w < grid.workload_labels.size(); ++w) {
      row.push_back(results[i++].response_time.Mean());
    }
    grid.response.push_back(std::move(row));
  }
  bench::PrintGrid(grid);

  // Columns: locality-major {uni, gauss, zipf} x ratio {10, 100}.
  const size_t kNone = 0, kNoLimit = 4;
  const size_t kUni100 = 1, kZipf100 = 5;

  const double headline =
      grid.At(kNone, kUni100) / grid.At(kNoLimit, kUni100);
  std::printf("\nocb-uni3-100: No_Clustering / No_limit = %.2fx\n", headline);
  bench::ShapeCheck(
      "clustering (No_limit) improves uniform-locality reads at R/W=100",
      headline > 1.0);

  bool reads_amortise = true;
  for (size_t w = 1; w < grid.workload_labels.size(); w += 2) {  // R/W=100
    if (grid.At(kNoLimit, w) > grid.At(kNone, w)) reads_amortise = false;
  }
  bench::ShapeCheck(
      "No_limit never loses to No_Clustering at R/W=100 (any locality)",
      reads_amortise);

  const double skew_gain =
      grid.At(kNone, kUni100) / grid.At(kNone, kZipf100);
  std::printf("No_Clustering at R/W=100: uniform / zipf = %.2fx\n",
              skew_gain);
  bench::ShapeCheck(
      "zipf reference locality is no slower than uniform under "
      "No_Clustering (popular objects stay resident)",
      skew_gain >= 1.0);
  return 0;
}
