// Regenerates Figure 5.10: the broken-arc cost difference between
// Linear_Split and the exact NP_Split across transaction characteristics.
// NP_Split always finds the minimum-cost partition; the figure shows how
// much the linear heuristic gives up as structure density grows.

#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "cluster/page_splitter.h"
#include "util/random.h"

using namespace oodb;
using cluster::DepArc;
using cluster::DepNode;
using cluster::DependencyGraph;

namespace {

// Builds a synthetic page dependency graph with the structural character
// of the given density: clumps of `fanout` related objects (a composite
// and its components) co-resident on one overflowing page.
DependencyGraph MakePageGraph(int fanout, Rng& rng) {
  DependencyGraph g;
  const uint32_t page_capacity = 4096;
  uint64_t used = 0;
  std::vector<uint32_t> clump_roots;
  while (used < page_capacity + 200) {  // overflowing page
    const auto root = static_cast<uint32_t>(g.nodes.size());
    const uint32_t root_size = 100 + static_cast<uint32_t>(rng.NextBelow(100));
    g.nodes.push_back(DepNode{root, root_size});
    used += root_size;
    clump_roots.push_back(root);
    const int members = 1 + static_cast<int>(rng.NextBelow(
                                static_cast<uint64_t>(fanout)));
    for (int m = 0; m < members && used < page_capacity + 200; ++m) {
      const auto node = static_cast<uint32_t>(g.nodes.size());
      const uint32_t size = 60 + static_cast<uint32_t>(rng.NextBelow(120));
      g.nodes.push_back(DepNode{node, size});
      used += size;
      g.arcs.push_back(DepArc{root, node, rng.UniformDouble(0.3, 1.0)});
      // occasional cross-links (nets between components)
      if (m > 0 && rng.Bernoulli(0.3)) {
        g.arcs.push_back(
            DepArc{node - 1, node, rng.UniformDouble(0.05, 0.3)});
      }
    }
    // weak links between clumps (shared nets)
    if (clump_roots.size() > 1 && rng.Bernoulli(0.5)) {
      g.arcs.push_back(DepArc{clump_roots[clump_roots.size() - 2], root,
                              rng.UniformDouble(0.02, 0.15)});
    }
  }
  return g;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 5.10",
      "Broken-arc cost difference: Linear_Split vs NP_Split",
      "NP_Split never breaks more arc weight than Linear_Split; the "
      "difference is negligible at low density (few arcs) and grows with "
      "density");

  Rng rng(99);
  const int trials = bench::FastMode() ? 50 : 400;
  TablePrinter table({"density", "fanout", "mean linear cost",
                      "mean NP cost", "mean diff", "worst diff",
                      "linear==NP (%)"});
  double mean_diff_by_density[3] = {0, 0, 0};
  const struct {
    const char* name;
    int fanout;
  } levels[] = {{"low-3", 3}, {"med-5", 6}, {"high-10", 12}};

  for (int d = 0; d < 3; ++d) {
    double linear_sum = 0, np_sum = 0, diff_sum = 0, worst = 0;
    int equal = 0, counted = 0;
    for (int t = 0; t < trials; ++t) {
      DependencyGraph g = MakePageGraph(levels[d].fanout, rng);
      auto linear = cluster::GreedyLinearSplit(g, 4096);
      auto np = cluster::ExhaustiveMinCutSplit(g, 4096);
      if (!linear.feasible || !np.feasible) continue;
      ++counted;
      linear_sum += linear.broken_cost;
      np_sum += np.broken_cost;
      const double diff = linear.broken_cost - np.broken_cost;
      diff_sum += diff;
      worst = std::max(worst, diff);
      if (diff < 1e-9) ++equal;
    }
    mean_diff_by_density[d] = diff_sum / std::max(1, counted);
    table.AddRow({levels[d].name, std::to_string(levels[d].fanout),
                  FormatDouble(linear_sum / std::max(1, counted), 3),
                  FormatDouble(np_sum / std::max(1, counted), 3),
                  FormatDouble(mean_diff_by_density[d], 3),
                  FormatDouble(worst, 3),
                  FormatDouble(100.0 * equal / std::max(1, counted), 1)});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  bench::ShapeCheck("NP cost <= linear cost on average at every density",
                    mean_diff_by_density[0] >= -1e-9 &&
                        mean_diff_by_density[1] >= -1e-9 &&
                        mean_diff_by_density[2] >= -1e-9);
  bench::ShapeCheck(
      "the linear-vs-NP gap grows from low to high density",
      mean_diff_by_density[2] >= mean_diff_by_density[0]);
  return 0;
}
