// Regenerates Figure 3.2: read/write ratio of the ten OCT tools.
//
// The paper instrumented ~5000 real tool invocations; here the synthetic
// tool drivers replay each tool's access-pattern signature against the
// OCT-like data manager and the instrumentation derives the same metric.

#include <iostream>

#include "bench_common.h"
#include "oct/oct_tools.h"
#include "oct/trace_analyzer.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 3.2", "OCT tools' read/write ratio",
      "VEM highest at ~6000; the other tools span 0.52 .. 170, with the "
      "MOSAICO phases (atlas..mosaico) covering that whole range");

  oct::OctWorkbench workbench(7);
  workbench.RunAll(bench::FastMode() ? 3 : 12);
  const auto summaries = oct::SummarizeByTool(workbench.trace().sessions());

  TablePrinter table({"tool", "invocations", "reads", "writes",
                      "R/W ratio", "paper anchor"});
  const char* anchors[] = {"~6000", "~90",  "~45", "~20", "~170",
                           "0.52",  "~2",   "~8",  "~30", "~170"};
  double vem_ratio = 0, atlas_ratio = 1e9, mosaico_ratio = 0;
  for (size_t i = 0; i < summaries.size(); ++i) {
    const auto& t = summaries[i];
    table.AddRow({t.tool, std::to_string(t.invocations),
                  std::to_string(t.total_reads),
                  std::to_string(t.total_writes),
                  FormatDouble(t.rw_ratio, 2),
                  i < 10 ? anchors[i] : "?"});
    if (t.tool == "vem") vem_ratio = t.rw_ratio;
    if (t.tool == "atlas") atlas_ratio = t.rw_ratio;
    if (t.tool == "mosaico") mosaico_ratio = t.rw_ratio;
  }
  table.Print(std::cout);

  bench::ShapeCheck("VEM has the highest R/W ratio (>1000)",
                    vem_ratio > 1000);
  bench::ShapeCheck("atlas is write-dominant (R/W < 1)", atlas_ratio < 1);
  bench::ShapeCheck(
      "MOSAICO phases span 0.52 .. ~170 within one run",
      atlas_ratio < 1 && mosaico_ratio > 100 && mosaico_ratio < 300);
  return 0;
}
