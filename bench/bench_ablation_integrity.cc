// Ablation: referential integrity — tool-level verification scans vs
// system-maintained invariants. The paper (§3.5) observed that SPARCS
// "scans through the entire design to make sure that no two terminals
// have more than one path between them... it introduces a tremendous
// number of unnecessary I/Os" that a DBMS with referential integrity
// would eliminate. This bench measures exactly that overhead on the
// synthetic SPARCS driver, and shows the system-side alternative (the
// StructureValidator over the design graph) as a one-pass check.

#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "objmodel/validator.h"
#include "oct/oct_tools.h"
#include "oct/trace_analyzer.h"
#include "workload/db_builder.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Ablation", "Tool-level integrity scans vs system support",
      "the SPARCS verification scan is a large share of the tool's "
      "session I/O; with system-maintained invariants those reads "
      "disappear from every invocation");

  // --- Tool-level scan cost on the OCT workbench. ---
  const int invocations = bench::FastMode() ? 4 : 10;
  oct::ToolProfile sparcs;
  for (const auto& t : oct::StandardTools()) {
    if (t.name == "SPARCS") sparcs = t;
  }

  oct::OctWorkbench with_scan(7);
  with_scan.RunTool(sparcs, invocations, /*integrity_prescan=*/true);
  oct::OctWorkbench without_scan(7);
  without_scan.RunTool(sparcs, invocations, /*integrity_prescan=*/false);

  auto total_ops = [](const oct::OctWorkbench& wb) {
    uint64_t ops = 0;
    for (const auto& s : wb.trace().sessions()) ops += s.TotalOps();
    return ops;
  };
  const uint64_t ops_with = total_ops(with_scan);
  const uint64_t ops_without = total_ops(without_scan);
  const double overhead =
      static_cast<double>(ops_with - ops_without) /
      static_cast<double>(ops_with);

  // No simulation cells here — record the scan-overhead comparison itself
  // (io_count carries the logical-op totals).
  for (const auto& [label, ops] :
       {std::pair<const char*, uint64_t>{"with_scan", ops_with},
        {"without_scan", ops_without}}) {
    core::BenchRecord record;
    record.cell_label = label;
    record.policy = "SPARCS";
    record.workload = "oct-trace";
    record.io_count = ops;
    bench::Report().Record(record);
  }

  std::printf("SPARCS, %d invocations:\n", invocations);
  std::printf("  with per-invocation verification scan : %llu logical ops\n",
              static_cast<unsigned long long>(ops_with));
  std::printf("  without (system-maintained invariant)  : %llu logical ops\n",
              static_cast<unsigned long long>(ops_without));
  std::printf("  scan share of tool I/O                 : %.1f%%\n",
              overhead * 100);

  // --- The system-side alternative on the Version Data Model. ---
  obj::TypeLattice lattice;
  const auto types = workload::RegisterCadTypes(lattice);
  obj::ObjectGraph graph(&lattice);
  store::StorageManager storage(4096);
  cluster::AffinityModel affinity(&lattice);
  cluster::ClusterManager mgr(&graph, &storage, &affinity, nullptr,
                              {.pool = cluster::CandidatePool::kWithinDb,
                               .split = cluster::SplitPolicy::kLinearGreedy});
  workload::DatabaseSpec spec;
  spec.target_bytes = 1u << 20;
  workload::DbBuilder builder(&graph, &mgr, nullptr, spec);
  builder.Build(types);

  obj::StructureValidator validator(&graph);
  const auto violations = validator.Validate(16);
  std::printf("\nStructureValidator over %zu design objects: %zu "
              "violations\n",
              graph.live_count(), violations.size());
  for (const auto& v : violations) {
    std::printf("  %s\n", v.Describe(graph).c_str());
  }

  bench::ShapeCheck(
      "the verification scan is a substantial share (>10%) of SPARCS I/O",
      overhead > 0.10);
  bench::ShapeCheck("the generated design satisfies every invariant",
                    violations.empty());
  return 0;
}
