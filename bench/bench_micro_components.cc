// Component micro-benchmarks on google-benchmark: the cost of the core
// mechanisms — buffer-pool fixes per replacement policy, page splitting at
// several graph sizes, the event kernel, candidate scoring, and the
// workload RNG. These are engineering baselines, not paper figures.

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <vector>

#include "buffer/buffer_pool.h"
#include "sim/event_calendar.h"
#include "cluster/affinity.h"
#include "cluster/cluster_manager.h"
#include "cluster/page_splitter.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "storage/storage_manager.h"
#include "util/random.h"
#include "workload/db_builder.h"

namespace oodb {
namespace {

// ------------------------------------------------------------ buffer

void BM_BufferFix(benchmark::State& state) {
  const auto policy = static_cast<buffer::ReplacementPolicy>(state.range(0));
  buffer::BufferPool pool(1024, policy, 7);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pool.Fix(static_cast<store::PageId>(rng.Zipf(8192, 0.7))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BufferFix)
    ->Arg(static_cast<int>(buffer::ReplacementPolicy::kLru))
    ->Arg(static_cast<int>(buffer::ReplacementPolicy::kContextSensitive))
    ->Arg(static_cast<int>(buffer::ReplacementPolicy::kRandom));

void BM_BufferBoost(benchmark::State& state) {
  buffer::BufferPool pool(1024, buffer::ReplacementPolicy::kContextSensitive);
  for (store::PageId p = 0; p < 1024; ++p) pool.Fix(p);
  Rng rng(13);
  for (auto _ : state) {
    pool.Boost(static_cast<store::PageId>(rng.NextBelow(1024)), 2.0);
  }
}
BENCHMARK(BM_BufferBoost);

// ------------------------------------------------------------ splitter

cluster::DependencyGraph MakeGraph(int nodes, Rng& rng) {
  cluster::DependencyGraph g;
  for (int i = 0; i < nodes; ++i) {
    g.nodes.push_back(cluster::DepNode{static_cast<obj::ObjectId>(i),
                                       80 + static_cast<uint32_t>(
                                                rng.NextBelow(120))});
  }
  for (uint32_t a = 0; a + 1 < static_cast<uint32_t>(nodes); ++a) {
    g.arcs.push_back(
        cluster::DepArc{a, a + 1, rng.UniformDouble(0.1, 1.0)});
    if (rng.Bernoulli(0.3)) {
      const auto b = static_cast<uint32_t>(rng.NextBelow(a + 1));
      g.arcs.push_back(cluster::DepArc{b, a + 1, rng.UniformDouble(0.05, 0.4)});
    }
  }
  return g;
}

void BM_GreedyLinearSplit(benchmark::State& state) {
  Rng rng(17);
  auto g = MakeGraph(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::GreedyLinearSplit(g, 4096));
  }
}
BENCHMARK(BM_GreedyLinearSplit)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ExhaustiveSplit(benchmark::State& state) {
  Rng rng(19);
  auto g = MakeGraph(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::ExhaustiveMinCutSplit(g, 4096));
  }
}
BENCHMARK(BM_ExhaustiveSplit)->Arg(8)->Arg(16)->Arg(22)->Arg(40);

// ------------------------------------------------------------ sim kernel

// Hold-model benchmark (Vaucher & Duval): keep the queue at a steady
// population N and repeatedly pop the minimum and re-push it at a random
// offset. This is the access pattern the simulator's pending-event set
// sees, and the regime where the bucketed calendar's O(1) amortised
// Push/PopMin beats the binary heap's O(log N).
void BM_EventCalendarHold(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  sim::EventCalendar cal;
  Rng rng(31);
  uint64_t seq = 0;
  // Fill with the same spread the hold increments produce: the calendar
  // tunes its bucket width from the live population at resize time (size
  // triggers only, per Brown), so a fill that mismatches the steady state
  // would leave the day width mistuned for the whole run.
  for (size_t i = 0; i < n; ++i) {
    cal.Push(rng.UniformDouble(0.0, 10.0), seq++, 0);
  }
  for (auto _ : state) {
    const sim::EventCalendar::Entry e = cal.PopMin();
    cal.Push(e.time + rng.UniformDouble(0.1, 10.0), seq++, e.payload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventCalendarHold)->Arg(64)->Arg(1024)->Arg(16384);

// The same hold workload on the std::priority_queue the calendar replaced,
// so the speedup is visible in one report.
void BM_HeapHold(benchmark::State& state) {
  struct Ref {
    double time;
    uint64_t seq;
    bool operator>(const Ref& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  const auto n = static_cast<size_t>(state.range(0));
  std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> heap;
  Rng rng(31);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    heap.push(Ref{rng.UniformDouble(0.0, 10.0), seq++});
  }
  for (auto _ : state) {
    const Ref e = heap.top();
    heap.pop();
    heap.push(Ref{e.time + rng.UniformDouble(0.1, 10.0), seq++});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HeapHold)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(static_cast<double>(i % 17), [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEvents);

void BM_ResourceRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Resource cpu(sim, "cpu", 1);
    for (int i = 0; i < 100; ++i) {
      sim::Spawn([](sim::Simulator&, sim::Resource& r) -> sim::Task {
        co_await r.Use(0.001);
      }(sim, cpu));
    }
    sim.Run();
    benchmark::DoNotOptimize(cpu.completions());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ResourceRoundTrip);

// --------------------------------------------------------- cluster score

void BM_ScoreCandidates(benchmark::State& state) {
  obj::TypeLattice lattice;
  auto types = workload::RegisterCadTypes(lattice);
  obj::ObjectGraph graph(&lattice);
  store::StorageManager storage(4096);
  cluster::AffinityModel affinity(&lattice);
  cluster::ClusterManager mgr(&graph, &storage, &affinity, nullptr,
                              {.pool = cluster::CandidatePool::kWithinDb});
  workload::DatabaseSpec spec;
  spec.target_bytes = 512 << 10;
  workload::DbBuilder builder(&graph, &mgr, nullptr, spec);
  auto db = builder.Build(types);

  Rng rng(23);
  const auto& objects = db.modules[0].objects;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mgr.ScoreCandidates(objects[rng.NextBelow(objects.size())]));
  }
}
BENCHMARK(BM_ScoreCandidates);

// ------------------------------------------------------------ rng

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Zipf(100000, 0.6));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace oodb

BENCHMARK_MAIN();
