// Regenerates Figure 5.1: clustering-effects analysis — five clustering
// policies across the nine workload cells, with buffering fixed to no
// prefetch / 1000 buffers / LRU.

#include <cstdio>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.1", "Clustering effects analysis",
      "(a) run-time clustering always improves response time — by ~200% "
      "(3x) when both density and R/W ratio are high; (b) small I/O "
      "limits are valid at low density; (c) Cluster_within_Buffer "
      "degrades toward No_Clustering at high density");

  const auto grid =
      bench::RunClusteringGrid(core::StandardWorkloadGrid());
  bench::PrintGrid(grid);

  // Row/column indices: policies {none, within-buffer, 2io, 10io,
  // no-limit}; workloads low3-{5,10,100}, med5-{...}, hi10-{5,10,100}.
  const size_t kNone = 0, kWithinBuf = 1, k2Io = 2, kNoLimit = 4;
  const size_t kHi100 = 8, kLow5 = 0, kLow100 = 2;

  const double headline = grid.At(kNone, kHi100) / grid.At(kNoLimit, kHi100);
  std::printf("\nhi10-100: No_Clustering / No_limit = %.2fx\n", headline);
  bench::ShapeCheck(
      "response improves ~3x (>=2x) at hi10-100 under clustering",
      headline >= 2.0);

  bool always_better = true;
  for (size_t w = 0; w < grid.workload_labels.size(); ++w) {
    if (grid.At(kNoLimit, w) > grid.At(kNone, w)) always_better = false;
  }
  bench::ShapeCheck("clustering (No_limit) never loses to No_Clustering",
                    always_better);

  bench::ShapeCheck(
      "2_IO_limit comparable to No_limit at low density (within 15%)",
      grid.At(k2Io, kLow5) <= 1.15 * grid.At(kNoLimit, kLow5));

  // At R/W=5 within-buffer can even beat the exam-paying policies (its
  // clustering costs no I/O that few reads could amortise) — the paper's
  // own amortisation logic. The density-driven degradation is cleanest
  // where exam I/O is fully amortised, at R/W=100.
  const double wb_gap_low =
      grid.At(kWithinBuf, kLow100) / grid.At(kNoLimit, kLow100);
  const double wb_gap_high =
      grid.At(kWithinBuf, kHi100) / grid.At(kNoLimit, kHi100);
  std::printf("within-buffer gap to No_limit at R/W=100: low3 %.2fx -> "
              "hi10 %.2fx\n", wb_gap_low, wb_gap_high);
  bench::ShapeCheck(
      "Cluster_within_Buffer degrades toward No_Clustering as density "
      "rises (gap to No_limit at R/W=100 grows)",
      wb_gap_high > wb_gap_low);
  return 0;
}
