// Regenerates Figure 5.13: prefetching effect under LRU buffer
// replacement.

#include "bench_prefetch_common.h"

int main() {
  return oodb::bench::RunPrefetchFigure(
      "Figure 5.13", oodb::buffer::ReplacementPolicy::kLru);
}
