#ifndef SEMCLUST_BENCH_BENCH_COMMON_H_
#define SEMCLUST_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/bench_report.h"
#include "core/experiment.h"
#include "core/model_config.h"
#include "exec/experiment_runner.h"
#include "util/table_printer.h"

/// \file
/// Shared plumbing for the figure-regeneration harness. Every bench binary
/// prints: a header naming the paper table/figure it reproduces and the
/// expected shape, the regenerated series as an aligned table, and a short
/// shape check (PASS/DEVIATION) against the paper's qualitative claims.
///
/// Experiment grids run on the exec::ExperimentRunner worker pool; each
/// cell gets a splitmix64-derived per-cell seed, so the numbers are
/// bit-identical at any job count.
///
/// Environment:
///   SEMCLUST_BENCH_FAST=1      quarter-length runs (smoke mode)
///   SEMCLUST_BENCH_SEED=n      override the simulation base seed
///   SEMCLUST_BENCH_JOBS=n      worker threads (default: hardware
///                              concurrency; 1 = legacy serial path)
///   SEMCLUST_BENCH_JSON=path   append one JSON record per cell to `path`
///   SEMCLUST_BENCH_SERIES_S=x  simulated seconds between telemetry
///                              samples (default: epoch boundaries only)

namespace oodb::bench {

/// True when SEMCLUST_BENCH_FAST is set.
bool FastMode();

/// The base configuration used by all simulation benches: the scaled
/// database with the paper's 1000-buffer level and default cost model.
core::ModelConfig BaseConfig();

/// The per-binary JSON reporter. Its bench name is set by PrintHeader;
/// inert unless SEMCLUST_BENCH_JSON is set.
core::BenchReport& Report();

/// Prints the figure banner and names the JSON reporter after `figure`.
void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& expectation);

/// Prints a shape-check verdict line.
void ShapeCheck(const std::string& claim, bool holds);

/// One labelled cell for batch execution. Empty label fields are filled
/// from the config (policy from clustering, workload from the workload,
/// cell_label as "policy/workload").
struct CellSpec {
  core::ModelConfig config;
  std::string cell_label;
  std::string policy;
  std::string workload;
};

/// Runs `cells` through the ExperimentRunner (SEMCLUST_BENCH_JOBS
/// workers), emits one JSON record per cell through Report(), prints a
/// `[exec]` wall-clock summary to stderr, and returns the results in
/// submission order.
std::vector<core::RunResult> RunCells(std::vector<CellSpec> cells);

/// Runs one cell on the calling thread (no per-cell seed derivation — the
/// configured seed is used as-is) and returns mean response time in
/// seconds. Emits a JSON record.
double MeanResponse(const core::ModelConfig& config);

/// Label helper: seconds with ms precision.
std::string Sec(double s);

/// Response-time matrix of clustering policies x workload cells — the
/// shared shape behind Figures 5.1-5.4 and 5.6-5.8. Buffering is fixed to
/// the paper's setting for these figures: no prefetch, medium (=1000)
/// buffers, LRU replacement.
struct ClusteringGrid {
  std::vector<std::string> policy_labels;    // rows
  std::vector<std::string> workload_labels;  // columns
  /// response[policy][workload], mean seconds.
  std::vector<std::vector<double>> response;

  double At(size_t policy, size_t workload) const {
    return response[policy][workload];
  }
};

/// Runs the five clustering policies over `cells` as one parallel batch.
ClusteringGrid RunClusteringGrid(
    const std::vector<workload::WorkloadConfig>& cells,
    cluster::SplitPolicy split = cluster::SplitPolicy::kNoSplit);

/// Prints the grid with policies as rows.
void PrintGrid(const ClusteringGrid& grid);

}  // namespace oodb::bench

#endif  // SEMCLUST_BENCH_BENCH_COMMON_H_
