#ifndef SEMCLUST_BENCH_BENCH_COMMON_H_
#define SEMCLUST_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/model_config.h"
#include "util/table_printer.h"

/// \file
/// Shared plumbing for the figure-regeneration harness. Every bench binary
/// prints: a header naming the paper table/figure it reproduces and the
/// expected shape, the regenerated series as an aligned table, and a short
/// shape check (PASS/DEVIATION) against the paper's qualitative claims.
///
/// Environment:
///   SEMCLUST_BENCH_FAST=1   quarter-length runs (smoke mode)
///   SEMCLUST_BENCH_SEED=n   override the simulation seed

namespace oodb::bench {

/// True when SEMCLUST_BENCH_FAST is set.
bool FastMode();

/// The base configuration used by all simulation benches: the scaled
/// database with the paper's 1000-buffer level and default cost model.
core::ModelConfig BaseConfig();

/// Prints the figure banner.
void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& expectation);

/// Prints a shape-check verdict line.
void ShapeCheck(const std::string& claim, bool holds);

/// Runs one cell and returns mean response time in seconds.
double MeanResponse(const core::ModelConfig& config);

/// Label helper: seconds with ms precision.
std::string Sec(double s);

/// Response-time matrix of clustering policies x workload cells — the
/// shared shape behind Figures 5.1-5.4 and 5.6-5.8. Buffering is fixed to
/// the paper's setting for these figures: no prefetch, medium (=1000)
/// buffers, LRU replacement.
struct ClusteringGrid {
  std::vector<std::string> policy_labels;    // rows
  std::vector<std::string> workload_labels;  // columns
  /// response[policy][workload], mean seconds.
  std::vector<std::vector<double>> response;

  double At(size_t policy, size_t workload) const {
    return response[policy][workload];
  }
};

/// Runs the five clustering policies over `cells`.
ClusteringGrid RunClusteringGrid(
    const std::vector<workload::WorkloadConfig>& cells,
    cluster::SplitPolicy split = cluster::SplitPolicy::kNoSplit);

/// Prints the grid with policies as rows.
void PrintGrid(const ClusteringGrid& grid);

}  // namespace oodb::bench

#endif  // SEMCLUST_BENCH_BENCH_COMMON_H_
