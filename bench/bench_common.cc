#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace oodb::bench {

bool FastMode() {
  const char* fast = std::getenv("SEMCLUST_BENCH_FAST");
  return fast != nullptr && fast[0] != '\0' && fast[0] != '0';
}

core::ModelConfig BaseConfig() {
  core::ModelConfig cfg = core::ScaledConfig();
  cfg.buffer_pages = cfg.BufferMedium();  // the paper's 1000-buffer level
  cfg.warmup_transactions = FastMode() ? 100 : 300;
  cfg.measured_transactions = FastMode() ? 500 : 2000;
  if (const char* seed = std::getenv("SEMCLUST_BENCH_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  return cfg;
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", figure.c_str(), title.c_str());
  std::printf("Paper expectation: %s\n", expectation.c_str());
  if (FastMode()) std::printf("(fast mode: shortened runs)\n");
  std::printf("================================================================\n");
}

void ShapeCheck(const std::string& claim, bool holds) {
  std::printf("[%s] %s\n", holds ? "SHAPE-OK " : "DEVIATION", claim.c_str());
}

double MeanResponse(const core::ModelConfig& config) {
  return core::RunCell(config).response_time.Mean();
}

std::string Sec(double s) { return FormatDouble(s * 1000.0, 1) + " ms"; }

ClusteringGrid RunClusteringGrid(
    const std::vector<workload::WorkloadConfig>& cells,
    cluster::SplitPolicy split) {
  ClusteringGrid grid;
  const auto policies = core::ClusteringPolicyLevels(split);
  for (const auto& w : cells) grid.workload_labels.push_back(w.Label());
  for (const auto& policy : policies) {
    grid.policy_labels.push_back(policy.Label());
    std::vector<double> row;
    for (const auto& w : cells) {
      core::ModelConfig cfg = core::WithWorkload(BaseConfig(), w);
      cfg.clustering = policy;
      row.push_back(MeanResponse(cfg));
    }
    grid.response.push_back(std::move(row));
  }
  return grid;
}

void PrintGrid(const ClusteringGrid& grid) {
  std::vector<std::string> headers{"policy \\ workload"};
  for (const auto& l : grid.workload_labels) headers.push_back(l);
  TablePrinter table(std::move(headers));
  for (size_t p = 0; p < grid.policy_labels.size(); ++p) {
    std::vector<std::string> row{grid.policy_labels[p]};
    for (double rt : grid.response[p]) row.push_back(Sec(rt));
    table.AddRow(std::move(row));
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);
}

}  // namespace oodb::bench
