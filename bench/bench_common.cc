#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace oodb::bench {

namespace {

double Now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

void FillDefaultLabels(CellSpec& cell) {
  if (cell.policy.empty()) cell.policy = cell.config.clustering.Label();
  if (cell.workload.empty()) cell.workload = cell.config.WorkloadLabel();
  if (cell.cell_label.empty()) {
    cell.cell_label = cell.policy + "/" + cell.workload;
  }
}

}  // namespace

bool FastMode() {
  const char* fast = std::getenv("SEMCLUST_BENCH_FAST");
  return fast != nullptr && fast[0] != '\0' && fast[0] != '0';
}

core::ModelConfig BaseConfig() {
  core::ModelConfig cfg = core::ScaledConfig();
  cfg.buffer_pages = cfg.BufferMedium();  // the paper's 1000-buffer level
  cfg.warmup_transactions = FastMode() ? 100 : 300;
  cfg.measured_transactions = FastMode() ? 500 : 2000;
  if (const char* seed = std::getenv("SEMCLUST_BENCH_SEED")) {
    cfg.seed = static_cast<uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  // Telemetry density: epoch-boundary samples are always on; a positive
  // interval adds simulated-time samples between them (DESIGN.md §9).
  if (const char* interval = std::getenv("SEMCLUST_BENCH_SERIES_S")) {
    cfg.telemetry_interval_s = std::strtod(interval, nullptr);
  }
  // Span profiler (DESIGN.md §14), same knob semclust_run honours.
  if (const char* spans = std::getenv("SEMCLUST_SPANS")) {
    cfg.profile_spans = spans[0] != '\0' && spans[0] != '0';
  }
  return cfg;
}

core::BenchReport& Report() {
  static core::BenchReport report("bench");
  return report;
}

void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& expectation) {
  Report().set_bench(figure);
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", figure.c_str(), title.c_str());
  std::printf("Paper expectation: %s\n", expectation.c_str());
  if (FastMode()) std::printf("(fast mode: shortened runs)\n");
  std::printf("================================================================\n");
}

void ShapeCheck(const std::string& claim, bool holds) {
  std::printf("[%s] %s\n", holds ? "SHAPE-OK " : "DEVIATION", claim.c_str());
}

std::vector<core::RunResult> RunCells(std::vector<CellSpec> cells) {
  for (CellSpec& cell : cells) FillDefaultLabels(cell);

  std::vector<core::ModelConfig> configs;
  configs.reserve(cells.size());
  for (const CellSpec& cell : cells) configs.push_back(cell.config);

  exec::ExperimentRunner runner;
  const double start = Now();
  auto outcomes = runner.Run(std::move(configs));
  const double wall = Now() - start;
  // Status goes to stderr so the stdout tables stay byte-identical to the
  // serial harness.
  std::fprintf(stderr, "[exec] %zu cells, jobs=%d, %.1f s wall\n",
               cells.size(), runner.jobs(), wall);

  std::vector<core::RunResult> results;
  results.reserve(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    Report().Record(cells[i].cell_label, cells[i].policy, cells[i].workload,
                    outcomes[i].result, outcomes[i].wall_s);
    results.push_back(std::move(outcomes[i].result));
  }
  return results;
}

double MeanResponse(const core::ModelConfig& config) {
  const double start = Now();
  const core::RunResult result = core::RunCell(config);
  CellSpec labels;
  labels.config = config;
  FillDefaultLabels(labels);
  Report().Record(labels.cell_label, labels.policy, labels.workload, result,
                  Now() - start);
  return result.response_time.Mean();
}

std::string Sec(double s) { return FormatDouble(s * 1000.0, 1) + " ms"; }

ClusteringGrid RunClusteringGrid(
    const std::vector<workload::WorkloadConfig>& cells,
    cluster::SplitPolicy split) {
  ClusteringGrid grid;
  const auto policies = core::ClusteringPolicyLevels(split);
  for (const auto& w : cells) grid.workload_labels.push_back(w.Label());
  for (const auto& policy : policies) grid.policy_labels.push_back(policy.Label());

  // One flat batch (policy-major, matching the legacy loop order) so the
  // whole grid parallelises across SEMCLUST_BENCH_JOBS workers.
  std::vector<CellSpec> batch;
  batch.reserve(policies.size() * cells.size());
  for (const auto& policy : policies) {
    for (const auto& w : cells) {
      CellSpec cell;
      cell.config = core::WithWorkload(BaseConfig(), w);
      cell.config.clustering = policy;
      batch.push_back(std::move(cell));
    }
  }
  const auto results = RunCells(std::move(batch));

  size_t i = 0;
  for (size_t p = 0; p < policies.size(); ++p) {
    std::vector<double> row;
    row.reserve(cells.size());
    for (size_t w = 0; w < cells.size(); ++w) {
      row.push_back(results[i++].response_time.Mean());
    }
    grid.response.push_back(std::move(row));
  }
  return grid;
}

void PrintGrid(const ClusteringGrid& grid) {
  std::vector<std::string> headers{"policy \\ workload"};
  for (const auto& l : grid.workload_labels) headers.push_back(l);
  TablePrinter table(std::move(headers));
  for (size_t p = 0; p < grid.policy_labels.size(); ++p) {
    std::vector<std::string> row{grid.policy_labels[p]};
    for (double rt : grid.response[p]) row.push_back(Sec(rt));
    table.AddRow(std::move(row));
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);
}

}  // namespace oodb::bench
