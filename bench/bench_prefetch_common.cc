#include "bench_prefetch_common.h"

#include <cstdio>
#include <sstream>

namespace oodb::bench {

int RunPrefetchFigure(const std::string& figure,
                      buffer::ReplacementPolicy replacement) {
  PrintHeader(
      figure,
      std::string("Prefetching effect under ") +
          buffer::ReplacementPolicyName(replacement) +
          " buffer replacement",
      "prefetch-within-database performs best in all cases: paying extra "
      "I/Os to have data resident before it is needed improves response; "
      "prefetch-within-buffer costs no I/O and sits between");

  const auto cells = core::StandardWorkloadGrid();
  const buffer::PrefetchPolicy policies[] = {
      buffer::PrefetchPolicy::kNone, buffer::PrefetchPolicy::kWithinBuffer,
      buffer::PrefetchPolicy::kWithinDb};

  std::vector<std::string> headers{"prefetch \\ workload"};
  for (const auto& w : cells) headers.push_back(w.Label());
  TablePrinter table(std::move(headers));

  // One flat batch (prefetch-major, matching the legacy loop order) over
  // the ExperimentRunner worker pool.
  std::vector<CellSpec> batch;
  for (auto prefetch : policies) {
    for (size_t w = 0; w < cells.size(); ++w) {
      CellSpec cell;
      cell.config = core::WithWorkload(BaseConfig(), cells[w]);
      cell.config.clustering.pool = cluster::CandidatePool::kWithinDb;
      cell.config.clustering.split = cluster::SplitPolicy::kLinearGreedy;
      cell.config.replacement = replacement;
      cell.config.prefetch = prefetch;
      cell.policy = buffer::PrefetchPolicyName(prefetch);
      batch.push_back(std::move(cell));
    }
  }
  const auto results = RunCells(std::move(batch));

  double rt[3][9];
  size_t i = 0;
  for (int p = 0; p < 3; ++p) {
    std::vector<std::string> row{buffer::PrefetchPolicyName(policies[p])};
    for (size_t w = 0; w < cells.size(); ++w) {
      rt[p][w] = results[i++].response_time.Mean();
      row.push_back(Sec(rt[p][w]));
    }
    table.AddRow(std::move(row));
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  int db_best_cells = 0;
  int db_wins = 0;
  for (int w = 0; w < 9; ++w) {
    if (rt[2][w] <= 1.05 * std::min(rt[0][w], rt[1][w])) ++db_best_cells;
    if (rt[2][w] <= std::min(rt[0][w], rt[1][w])) ++db_wins;
  }
  ShapeCheck(
      "prefetch-within-DB best-or-tied (within 5%) in >= 7 of 9 workloads",
      db_best_cells >= 7);
  std::printf("prefetch-within-DB strictly best in %d of 9 workloads\n",
              db_wins);

  if (replacement == buffer::ReplacementPolicy::kContextSensitive) {
    // Fig 5.12 extra: within-buffer ~= no-prefetch at low/med density
    // (context priorities already capture the relationships).
    const bool close = rt[1][0] <= 1.10 * rt[0][0] &&
                       rt[0][0] <= 1.10 * rt[1][0];
    ShapeCheck(
        "under context-sensitive replacement, prefetch-within-buffer ~= "
        "no-prefetch at low density",
        close);
  } else {
    // Figs 5.13/5.14: without context knowledge, prefetching is the only
    // way to reflect structure in buffer priorities.
    ShapeCheck(
        "prefetching (either scope) helps vs no-prefetch at hi10-100",
        std::min(rt[1][8], rt[2][8]) <= rt[0][8] * 1.02);
  }
  return 0;
}

}  // namespace oodb::bench
