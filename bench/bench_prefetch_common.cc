#include "bench_prefetch_common.h"

#include <cstdio>
#include <sstream>

namespace oodb::bench {

int RunPrefetchFigure(const std::string& figure,
                      buffer::ReplacementPolicy replacement) {
  PrintHeader(
      figure,
      std::string("Prefetching effect under ") +
          buffer::ReplacementPolicyName(replacement) +
          " buffer replacement",
      "prefetch-within-database performs best in all cases: paying extra "
      "I/Os to have data resident before it is needed improves response; "
      "prefetch-within-buffer costs no I/O and sits between");

  const auto cells = core::StandardWorkloadGrid();
  const buffer::PrefetchPolicy policies[] = {
      buffer::PrefetchPolicy::kNone, buffer::PrefetchPolicy::kWithinBuffer,
      buffer::PrefetchPolicy::kWithinDb};

  std::vector<std::string> headers{"prefetch \\ workload"};
  for (const auto& w : cells) headers.push_back(w.Label());
  TablePrinter table(std::move(headers));

  double rt[3][9];
  int p = 0;
  for (auto prefetch : policies) {
    std::vector<std::string> row{buffer::PrefetchPolicyName(prefetch)};
    for (size_t w = 0; w < cells.size(); ++w) {
      core::ModelConfig cfg = core::WithWorkload(BaseConfig(), cells[w]);
      cfg.clustering.pool = cluster::CandidatePool::kWithinDb;
      cfg.clustering.split = cluster::SplitPolicy::kLinearGreedy;
      cfg.replacement = replacement;
      cfg.prefetch = prefetch;
      rt[p][w] = MeanResponse(cfg);
      row.push_back(Sec(rt[p][w]));
    }
    table.AddRow(std::move(row));
    ++p;
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  int db_best_cells = 0;
  int db_wins = 0;
  for (int w = 0; w < 9; ++w) {
    if (rt[2][w] <= 1.05 * std::min(rt[0][w], rt[1][w])) ++db_best_cells;
    if (rt[2][w] <= std::min(rt[0][w], rt[1][w])) ++db_wins;
  }
  ShapeCheck(
      "prefetch-within-DB best-or-tied (within 5%) in >= 7 of 9 workloads",
      db_best_cells >= 7);
  std::printf("prefetch-within-DB strictly best in %d of 9 workloads\n",
              db_wins);

  if (replacement == buffer::ReplacementPolicy::kContextSensitive) {
    // Fig 5.12 extra: within-buffer ~= no-prefetch at low/med density
    // (context priorities already capture the relationships).
    const bool close = rt[1][0] <= 1.10 * rt[0][0] &&
                       rt[0][0] <= 1.10 * rt[1][0];
    ShapeCheck(
        "under context-sensitive replacement, prefetch-within-buffer ~= "
        "no-prefetch at low density",
        close);
  } else {
    // Figs 5.13/5.14: without context knowledge, prefetching is the only
    // way to reflect structure in buffer priorities.
    ShapeCheck(
        "prefetching (either scope) helps vs no-prefetch at hi10-100",
        std::min(rt[1][8], rt[2][8]) <= rt[0][8] * 1.02);
  }
  return 0;
}

}  // namespace oodb::bench
