// Extension experiment motivated by §3.3: "different phases of the same
// application may have wide variations in the read/write ratio... the
// clustering algorithm must be adaptive to achieve adequate response time
// at different phases of an application." This bench replays a MOSAICO-
// like run — four phases whose target R/W ratios span the paper's
// measured range (0.52 .. 170) — and compares No_Clustering against
// run-time clustering phase by phase.

#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Extension (from §3.3)", "Clustering across MOSAICO-like phases",
      "one run whose phases span R/W 0.52 (atlas) .. 170 (mosaico): "
      "run-time clustering's advantage grows with each phase's read "
      "share, and it never loses even in the write-dominant phase");

  const std::vector<double> phases = {0.52, 2.0, 8.0, 170.0};
  const char* phase_names[] = {"atlas (0.52)", "cds (2)", "cpre (8)",
                               "mosaico (170)"};

  std::vector<std::string> headers{"policy \\ phase"};
  for (const char* n : phase_names) headers.push_back(n);
  TablePrinter table(std::move(headers));

  std::vector<std::vector<double>> rt;
  for (auto pool : {cluster::CandidatePool::kNoClustering,
                    cluster::CandidatePool::kWithinDb}) {
    core::ModelConfig cfg = bench::BaseConfig();
    cfg.workload.density = workload::StructureDensity::kMed5;
    cfg.database.density = cfg.workload.density;
    cfg.workload.read_write_ratio = phases[0];
    cfg.rw_ratio_schedule = phases;
    cfg.measurement_epochs = static_cast<int>(phases.size());
    cfg.measured_transactions = bench::FastMode() ? 1600 : 4000;
    cfg.clustering.pool = pool;
    cfg.clustering.split = cluster::SplitPolicy::kLinearGreedy;

    const core::RunResult r = core::RunCell(cfg);
    std::vector<std::string> row{cluster::CandidatePoolName(pool)};
    std::vector<double> values;
    for (const auto& epoch : r.response_epochs) {
      row.push_back(bench::Sec(epoch.Mean()));
      values.push_back(epoch.Mean());
    }
    table.AddRow(std::move(row));
    rt.push_back(std::move(values));
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nclustering advantage per phase: ");
  std::vector<double> gains;
  for (size_t p = 0; p < phases.size(); ++p) {
    gains.push_back(rt[0][p] / rt[1][p]);
    std::printf("%.2fx ", gains.back());
  }
  std::printf("\n");

  bench::ShapeCheck(
      "clustering never loses, even in the write-dominant atlas phase",
      gains.front() >= 0.95);
  bench::ShapeCheck(
      "the advantage in the read-dominant mosaico phase exceeds the "
      "atlas phase's",
      gains.back() > gains.front());
  return 0;
}
