// Regenerates Figure 5.8: clustering effect under high structure density,
// sweeping the read/write ratio.

#include <cstdio>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Figure 5.8", "Clustering effect under high structure density",
      "the gap between Cluster_within_Buffer and the other clustering "
      "policies widens: candidate pages are rarely all resident at high "
      "density, so within-buffer placement loses its effectiveness");

  const auto grid = bench::RunClusteringGrid(
      core::RatioSweep(workload::StructureDensity::kHigh10));
  bench::PrintGrid(grid);

  const size_t kNone = 0, kWithinBuf = 1, kNoLimit = 4;
  // At R/W=5 within-buffer's zero exam I/O can beat the exam-paying
  // policies (unamortised clustering I/O — the paper's own logic); where
  // reads dominate, within-buffer must sit between No_limit and
  // No_Clustering.
  const bool ordered =
      grid.At(kNoLimit, 2) <= grid.At(kWithinBuf, 2) &&
      grid.At(kWithinBuf, 2) <= 1.05 * grid.At(kNone, 2);
  bench::ShapeCheck(
      "No_limit <= Cluster_within_Buffer <= ~No_Clustering at hi10-100",
      ordered);

  const double gap =
      grid.At(kWithinBuf, 2) / grid.At(kNoLimit, 2);
  std::printf("\nwithin-buffer vs No_limit at hi10-100: %.2fx\n", gap);
  bench::ShapeCheck("a within-buffer gap (>1.1x) at hi10-100", gap > 1.1);
  return 0;
}
