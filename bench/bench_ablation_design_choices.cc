// Ablation: the two reproduction-specific placement choices documented in
// DESIGN.md — sibling-page candidate scoring, and the fresh-page-nucleus
// overflow fallback — toggled independently at the paper's headline
// workload.

#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Ablation", "Placement design choices (sibling scoring, fresh-page "
      "overflow fallback)",
      "both mechanisms are needed for run-time clustering to keep whole "
      "design modules together: without sibling candidates a component's "
      "only candidate is its composite's (often full) page; without the "
      "fresh-page fallback overflow scatters into the shared arrival "
      "stream");

  struct Variant {
    const char* name;
    bool siblings;
    bool fresh_page;
  } variants[] = {
      {"full (both on)", true, true},
      {"no sibling scoring", false, true},
      {"no fresh-page fallback", true, false},
      {"neither", false, false},
  };

  TablePrinter table({"variant", "low3-5", "hi10-100",
                      "hi10-100 vs No_Clustering"});

  // Baseline: No_Clustering at hi10-100.
  workload::WorkloadConfig hi;
  hi.density = workload::StructureDensity::kHigh10;
  hi.read_write_ratio = 100;
  workload::WorkloadConfig low;
  low.density = workload::StructureDensity::kLow3;
  low.read_write_ratio = 5;

  core::ModelConfig none_cfg = core::WithWorkload(bench::BaseConfig(), hi);
  none_cfg.clustering.pool = cluster::CandidatePool::kNoClustering;
  const double none_hi = bench::MeanResponse(none_cfg);

  double full_gain = 0, neither_gain = 0, no_sibling_gain = 0,
         no_fresh_gain = 0;
  for (const Variant& v : variants) {
    auto run = [&](const workload::WorkloadConfig& w) {
      core::ModelConfig cfg = core::WithWorkload(bench::BaseConfig(), w);
      cfg.clustering.pool = cluster::CandidatePool::kWithinDb;
      cfg.clustering.sibling_candidates = v.siblings;
      cfg.clustering.fresh_page_on_overflow = v.fresh_page;
      return bench::MeanResponse(cfg);
    };
    const double rt_low = run(low);
    const double rt_hi = run(hi);
    const double gain = none_hi / rt_hi;
    table.AddRow({v.name, bench::Sec(rt_low), bench::Sec(rt_hi),
                  FormatRatio(gain)});
    if (v.siblings && v.fresh_page) full_gain = gain;
    if (!v.siblings && v.fresh_page) no_sibling_gain = gain;
    if (v.siblings && !v.fresh_page) no_fresh_gain = gain;
    if (!v.siblings && !v.fresh_page) neither_gain = gain;
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nclustering gain over No_Clustering at hi10-100: full %.2fx,"
              " no-sibling %.2fx, no-fresh-page %.2fx, neither %.2fx\n",
              full_gain, no_sibling_gain, no_fresh_gain, neither_gain);
  bench::ShapeCheck("the full mechanism gives the largest gain",
                    full_gain >= no_sibling_gain &&
                        full_gain >= no_fresh_gain &&
                        full_gain >= neither_gain);
  bench::ShapeCheck("removing both mechanisms loses most of the gain",
                    neither_gain <= 0.6 * full_gain || neither_gain < 1.3);
  return 0;
}
