// Ablation: the two reproduction-specific placement choices documented in
// DESIGN.md — sibling-page candidate scoring, and the fresh-page-nucleus
// overflow fallback — toggled independently at the paper's headline
// workload.

#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace oodb;

int main() {
  bench::PrintHeader(
      "Ablation", "Placement design choices (sibling scoring, fresh-page "
      "overflow fallback)",
      "both mechanisms are needed for run-time clustering to keep whole "
      "design modules together: without sibling candidates a component's "
      "only candidate is its composite's (often full) page; without the "
      "fresh-page fallback overflow scatters into the shared arrival "
      "stream");

  struct Variant {
    const char* name;
    bool siblings;
    bool fresh_page;
  } variants[] = {
      {"full (both on)", true, true},
      {"no sibling scoring", false, true},
      {"no fresh-page fallback", true, false},
      {"neither", false, false},
  };

  TablePrinter table({"variant", "low3-5", "hi10-100",
                      "hi10-100 vs No_Clustering"});

  // Baseline: No_Clustering at hi10-100.
  workload::WorkloadConfig hi;
  hi.density = workload::StructureDensity::kHigh10;
  hi.read_write_ratio = 100;
  workload::WorkloadConfig low;
  low.density = workload::StructureDensity::kLow3;
  low.read_write_ratio = 5;

  // One parallel batch: the No_Clustering baseline plus the four variants
  // at both workloads.
  std::vector<bench::CellSpec> batch;
  {
    bench::CellSpec baseline;
    baseline.config = core::WithWorkload(bench::BaseConfig(), hi);
    baseline.config.clustering.pool = cluster::CandidatePool::kNoClustering;
    batch.push_back(std::move(baseline));
  }
  for (const Variant& v : variants) {
    for (const workload::WorkloadConfig& w : {low, hi}) {
      bench::CellSpec cell;
      cell.config = core::WithWorkload(bench::BaseConfig(), w);
      cell.config.clustering.pool = cluster::CandidatePool::kWithinDb;
      cell.config.clustering.sibling_candidates = v.siblings;
      cell.config.clustering.fresh_page_on_overflow = v.fresh_page;
      cell.policy = v.name;
      batch.push_back(std::move(cell));
    }
  }
  const auto results = bench::RunCells(std::move(batch));
  const double none_hi = results[0].response_time.Mean();

  double full_gain = 0, neither_gain = 0, no_sibling_gain = 0,
         no_fresh_gain = 0;
  for (size_t vi = 0; vi < 4; ++vi) {
    const Variant& v = variants[vi];
    const double rt_low = results[1 + 2 * vi].response_time.Mean();
    const double rt_hi = results[2 + 2 * vi].response_time.Mean();
    const double gain = none_hi / rt_hi;
    table.AddRow({v.name, bench::Sec(rt_low), bench::Sec(rt_hi),
                  FormatRatio(gain)});
    if (v.siblings && v.fresh_page) full_gain = gain;
    if (!v.siblings && v.fresh_page) no_sibling_gain = gain;
    if (v.siblings && !v.fresh_page) no_fresh_gain = gain;
    if (!v.siblings && !v.fresh_page) neither_gain = gain;
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\nclustering gain over No_Clustering at hi10-100: full %.2fx,"
              " no-sibling %.2fx, no-fresh-page %.2fx, neither %.2fx\n",
              full_gain, no_sibling_gain, no_fresh_gain, neither_gain);
  bench::ShapeCheck("the full mechanism gives the largest gain",
                    full_gain >= no_sibling_gain &&
                        full_gain >= no_fresh_gain &&
                        full_gain >= neither_gain);
  bench::ShapeCheck("removing both mechanisms loses most of the gain",
                    neither_gain <= 0.6 * full_gain || neither_gain < 1.3);
  return 0;
}
