// A design browser walks multiple representations of the same design
// objects (paper §1: "a design browser may walk through multiple
// representations... and clustering across correspondence is
// advantageous"). This example builds a multi-representation design,
// registers a correspondence user hint, and compares browsing cost under
// LRU vs context-sensitive buffering.
//
// Build & run:  ./build/examples/cad_design_browser

#include <cstdio>

#include "buffer/buffer_pool.h"
#include "buffer/prefetcher.h"
#include "cluster/cluster_manager.h"
#include "objmodel/object_graph.h"
#include "storage/storage_manager.h"
#include "workload/db_builder.h"

using namespace oodb;

namespace {

// One browse step: visit the object and hop to all of its correspondents
// (the browser's "show me this cell in every view" operation). Returns
// the number of page faults it caused.
uint64_t BrowseObject(const obj::ObjectGraph& graph,
                      const store::StorageManager& storage,
                      obj::ObjectId id, buffer::BufferPool& pool) {
  uint64_t faults = 0;
  auto touch = [&](obj::ObjectId o) {
    const store::PageId p = storage.PageOf(o);
    if (p == store::kInvalidPage) return;
    const auto fix = pool.Fix(p);
    if (!fix.hit) ++faults;
    // Context-sensitive priority maintenance: protect the pages of the
    // object's correspondents — the browser will visit them next.
    graph.ForEachNeighbor(o, obj::RelKind::kCorrespondence,
                          obj::Direction::kDown, [&](obj::ObjectId c) {
                            const store::PageId cp = storage.PageOf(c);
                            if (cp != store::kInvalidPage) {
                              pool.Boost(cp, 12.0);
                            }
                          });
  };
  touch(id);
  for (obj::ObjectId c : graph.Correspondents(id)) {
    if (graph.IsLive(c)) touch(c);
  }
  return faults;
}

}  // namespace

int main() {
  obj::TypeLattice lattice;
  const auto types = workload::RegisterCadTypes(lattice);
  obj::ObjectGraph graph(&lattice);
  store::StorageManager storage(4096);
  cluster::AffinityModel affinity(&lattice);

  // The browser's hint: "my primary access is via correspondence".
  cluster::ClusterConfig config;
  config.pool = cluster::CandidatePool::kWithinDb;
  config.split = cluster::SplitPolicy::kLinearGreedy;
  config.use_hints = true;
  config.hint_kind = obj::RelKind::kCorrespondence;
  cluster::ClusterManager clusterer(&graph, &storage, &affinity, nullptr,
                                    config);

  workload::DatabaseSpec spec;
  spec.target_bytes = 2u << 20;
  spec.alt_representations = 2;  // layout + two more views
  workload::DbBuilder builder(&graph, &clusterer, nullptr, spec);
  const auto db = builder.Build(types);
  std::printf("built %zu modules, %zu objects, %zu pages\n",
              db.modules.size(), db.TotalObjects(), storage.page_count());

  // Several engineers browse concurrently: interleave the modules
  // object-by-object against a pool that cannot hold all of them, twice
  // (cold pass + warm re-browse). Context-sensitive priorities protect
  // each object's correspondence partners across the interleaving.
  const size_t kBrowsers = std::min<size_t>(8, db.modules.size());
  for (auto policy : {buffer::ReplacementPolicy::kLru,
                      buffer::ReplacementPolicy::kContextSensitive}) {
    buffer::BufferPool pool(24, policy, 1);
    uint64_t faults[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      // Round-robin one object per module per turn.
      size_t cursor = 0;
      bool more = true;
      while (more) {
        more = false;
        for (size_t m = 0; m < kBrowsers; ++m) {
          const auto& objs = db.modules[m].objects;
          if (cursor >= objs.size()) continue;
          more = true;
          const obj::ObjectId id = objs[cursor];
          if (!graph.IsLive(id)) continue;
          faults[pass] += BrowseObject(graph, storage, id, pool);
        }
        ++cursor;
      }
    }
    std::printf("%-18s: %llu cold faults, %llu warm faults, hit ratio "
                "%.1f%%\n",
                buffer::ReplacementPolicyName(policy),
                static_cast<unsigned long long>(faults[0]),
                static_cast<unsigned long long>(faults[1]),
                pool.HitRatio() * 100);
  }

  std::printf("\ncorrespondence-hinted clustering makes each browse step "
              "touch co-located views;\ncontext-sensitive replacement "
              "keeps the sibling views resident between hops.\n");
  return 0;
}
