// Quickstart: the five-minute tour of semclust's public API.
//
//  1. define types with traversal-frequency profiles,
//  2. create versioned design objects with structural relationships,
//  3. place them through the run-time clustering manager,
//  4. run the full engineering-database simulation and read the results.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/engineering_db.h"
#include "core/experiment.h"
#include "core/report.h"
#include "objmodel/inheritance.h"
#include "objmodel/object_graph.h"

using namespace oodb;

int main() {
  // ---- 1. A small type lattice. --------------------------------------
  obj::TypeLattice lattice;
  // "layout" instances are navigated mostly along configuration (weight 6)
  // and version history (1.5); instances inherit this knowledge.
  const obj::TypeId layout = lattice.DefineType(
      "layout", obj::kInvalidType, 64, {6.0, 1.5, 1.0, 0.5},
      {{"bbox", 16, /*inheritable=*/true, /*read=*/2.0, /*update=*/0.1},
       {"geometry", 1500, true, 0.05, 0.0}});
  const obj::TypeId netlist =
      lattice.DefineType("netlist", obj::kInvalidType, 48,
                         {3.0, 1.0, 4.0, 0.5});

  // ---- 2. Objects and relationships. ---------------------------------
  obj::ObjectGraph graph(&lattice);
  const obj::FamilyId alu = graph.NewFamily("ALU");
  const obj::FamilyId carry = graph.NewFamily("CARRY-PROPAGATE");

  const obj::ObjectId alu2 = graph.Create(alu, 2, layout, 200);
  const obj::ObjectId alu3net = graph.Create(alu, 3, netlist, 150);
  const obj::ObjectId carry2 = graph.Create(carry, 2, layout, 180);

  graph.Relate(alu2, carry2, obj::RelKind::kConfiguration);   // composed of
  graph.Relate(alu2, alu3net, obj::RelKind::kCorrespondence);  // corresponds

  std::printf("%s is composed of %s and corresponds to %s\n",
              graph.NameOf(alu2).ToString().c_str(),
              graph.NameOf(carry2).ToString().c_str(),
              graph.NameOf(alu3net).ToString().c_str());

  // Instance-to-instance inheritance: derive ALU[3].layout. The cost model
  // decides per attribute between copy and reference, and the new version
  // inherits the correspondence by default.
  obj::InheritanceCostModel costs;
  const auto derived = obj::DeriveVersion(graph, alu2, costs);
  std::printf("derived %s: %d attr by copy, %d by reference, %d "
              "correspondence(s) inherited\n",
              graph.NameOf(derived.heir).ToString().c_str(),
              derived.attributes_by_copy, derived.attributes_by_reference,
              derived.correspondences_inherited);

  // ---- 3. Clustering-aware placement. --------------------------------
  store::StorageManager storage(4096);
  cluster::AffinityModel affinity(&lattice);
  cluster::ClusterManager clusterer(
      &graph, &storage, &affinity, /*buffer=*/nullptr,
      cluster::ClusterConfig{.pool = cluster::CandidatePool::kWithinDb,
                             .split = cluster::SplitPolicy::kLinearGreedy});
  for (obj::ObjectId id : {alu2, alu3net, carry2, derived.heir}) {
    const auto report = clusterer.PlaceNew(id);
    std::printf("placed %-16s on page %u%s\n",
                graph.NameOf(id).ToString().c_str(), report.page,
                report.appended ? " (arrival order)" : " (clustered)");
  }
  std::printf("ALU[2].layout and CARRY-PROPAGATE[2].layout co-located: %s\n",
              storage.PageOf(alu2) == storage.PageOf(carry2) ? "yes" : "no");

  // ---- 4. The full simulation. ----------------------------------------
  core::ModelConfig cfg = core::TestConfig();
  cfg.workload.density = workload::StructureDensity::kMed5;
  cfg.workload.read_write_ratio = 10;
  cfg.clustering.pool = cluster::CandidatePool::kWithinDb;
  cfg.replacement = buffer::ReplacementPolicy::kContextSensitive;
  cfg.prefetch = buffer::PrefetchPolicy::kWithinDb;

  std::printf("\nrunning the engineering-DB simulation (%d transactions)\n",
              cfg.measured_transactions);
  const core::RunResult r = core::RunCell(cfg);
  core::PrintRunReport(std::cout, cfg, r);
  return 0;
}
