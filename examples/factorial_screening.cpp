// Screening the eight control parameters with a 16-run fractional
// factorial before committing to the full 256-run design: the
// resolution-IV 2^(8-4) fraction estimates every main effect (clear of
// two-way aliases) at 1/16th the simulation cost — the standard way to
// find out *which* knobs matter before studying *how*.
//
// Build & run:  ./build/examples/factorial_screening

#include <cmath>
#include <cstdio>

#include "analysis/fractional.h"
#include "core/experiment.h"

using namespace oodb;

int main() {
  core::ModelConfig base = core::TestConfig();
  base.measured_transactions = 400;
  base.warmup_transactions = 60;

  analysis::FractionalDesign design(base, analysis::StandardFactors(),
                                    analysis::StandardHalfGenerators8());
  std::printf("2^(8-%zu) fractional factorial: %zu runs, resolution %s\n\n",
              analysis::StandardHalfGenerators8().size(),
              design.num_runs(),
              design.Resolution() == 4 ? "IV" : "?");
  design.Run();

  std::printf("%-16s %14s   alias structure (order <= 2)\n", "factor",
              "effect (ms)");
  const auto effects = design.MainEffects();
  for (size_t f = 0; f < effects.size(); ++f) {
    const auto aliases = design.Aliases(1u << f, 2);
    std::string alias_text = aliases.empty() ? "(clear)" : "";
    for (const auto& a : aliases) {
      if (!alias_text.empty()) alias_text += ", ";
      alias_text += a;
    }
    std::printf("%-16s %14.2f   %s\n", effects[f].name.c_str(),
                effects[f].effect * 1000, alias_text.c_str());
  }

  // Rank by magnitude — the screening verdict.
  std::vector<analysis::EffectResult> ranked = effects;
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return std::abs(a.effect) > std::abs(b.effect);
  });
  std::printf("\nscreening verdict: study {%s, %s, %s} first; {%s} last\n",
              ranked[0].name.c_str(), ranked[1].name.c_str(),
              ranked[2].name.c_str(), ranked.back().name.c_str());
  std::printf("(the full 2^8 design behind Fig 6.1 costs 16x more "
              "simulation time)\n");
  return 0;
}
