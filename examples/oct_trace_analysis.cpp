// Replays the ten OCT CAD tools against the OCT-like data manager and
// prints the Section 3 access-pattern analysis: per-tool read/write
// ratios, I/O rates, and structure-density distributions — the data that
// motivates dynamic clustering (reads dominate writes in real CAD).
//
// Build & run:  ./build/examples/oct_trace_analysis

#include <cstdio>

#include "oct/oct_tools.h"
#include "oct/trace_analyzer.h"

using namespace oodb;

int main() {
  oct::OctWorkbench workbench(/*seed=*/7);
  std::printf("replaying %zu tools x 8 invocations against the OCT data "
              "manager...\n\n",
              oct::StandardTools().size());
  workbench.RunAll(/*invocations_per_tool=*/8);

  const auto summaries =
      oct::SummarizeByTool(workbench.trace().sessions());

  std::printf("%-10s %10s %10s %9s | %7s %7s %7s | %8s\n", "tool", "R/W",
              "ops/sec", "sessions", "low", "med", "high", "up=1 obj");
  std::printf("%.*s\n", 86,
              "----------------------------------------------------------"
              "----------------------------");
  double total_reads = 0, total_writes = 0;
  for (const auto& t : summaries) {
    std::printf("%-10s %10.2f %10.1f %9llu | %6.1f%% %6.1f%% %6.1f%% | "
                "%7.1f%%\n",
                t.tool.c_str(), t.rw_ratio, t.io_rate,
                static_cast<unsigned long long>(t.invocations),
                t.density_low * 100, t.density_med * 100,
                t.density_high * 100, t.upward_single_fraction * 100);
    total_reads += static_cast<double>(t.total_reads);
    total_writes += static_cast<double>(t.total_writes);
  }
  std::printf("\noverall logical R/W ratio across the tool suite: %.1f\n",
              total_reads / total_writes);
  std::printf("reads dominate writes -> dynamic clustering and context-"
              "sensitive buffering pay off\n(the paper's Section 3 "
              "conclusion).\n");
  return 0;
}
