// Checkin/checkout with version derivation and instance-to-instance
// inheritance (paper §4.1: checkout = component + corresponding-object
// retrievals; checkin = insertions and updates). Shows the copy-vs-
// reference decisions the inheritance cost model makes and how run-time
// reclustering reacts to the checkin.
//
// Build & run:  ./build/examples/versioned_checkin_checkout

#include <cstdio>
#include <vector>

#include "cluster/cluster_manager.h"
#include "objmodel/inheritance.h"
#include "objmodel/object_graph.h"
#include "storage/storage_manager.h"

using namespace oodb;

int main() {
  obj::TypeLattice lattice;
  const obj::TypeId layout = lattice.DefineType(
      "layout", obj::kInvalidType, 64, {5.0, 2.0, 1.0, 1.0},
      {
          {"bbox", 16, true, /*read=*/3.0, /*update=*/0.1},      // hot+small
          {"geometry", 2000, true, /*read=*/0.05, /*update=*/0}, // big+cold
          {"status", 16, true, /*read=*/0.2, /*update=*/5.0},    // churny
      });

  obj::InheritanceCostModel costs;
  std::printf("inheritance cost model decisions for type 'layout':\n");
  for (const auto& attr : lattice.ResolveAttributes(layout)) {
    std::printf("  %-10s %5u B  read %.2f/access  update %.2f  -> %s\n",
                attr.name.c_str(), attr.size_bytes, attr.read_frequency,
                attr.update_frequency,
                obj::ChooseImplementation(attr, costs) ==
                        obj::ImplChoice::kByCopy
                    ? "by copy"
                    : "by reference");
  }

  obj::ObjectGraph graph(&lattice);
  store::StorageManager storage(4096);
  cluster::AffinityModel affinity(&lattice);
  cluster::ClusterManager clusterer(
      &graph, &storage, &affinity, nullptr,
      {.pool = cluster::CandidatePool::kWithinDb,
       .split = cluster::SplitPolicy::kLinearGreedy,
       .recluster_gain_threshold = 0.2});

  // The repository: DATAPATH[1] composed of ALU[1] and SHIFTER[1].
  const obj::FamilyId dp_f = graph.NewFamily("DATAPATH");
  const obj::FamilyId alu_f = graph.NewFamily("ALU");
  const obj::FamilyId sh_f = graph.NewFamily("SHIFTER");
  const obj::ObjectId datapath = graph.Create(dp_f, 1, layout, 300);
  const obj::ObjectId alu = graph.Create(alu_f, 1, layout,
                                         lattice.InstanceSize(layout));
  const obj::ObjectId shifter = graph.Create(sh_f, 1, layout, 250);
  graph.Relate(datapath, alu, obj::RelKind::kConfiguration);
  graph.Relate(datapath, shifter, obj::RelKind::kConfiguration);
  for (obj::ObjectId id : {datapath, alu, shifter}) clusterer.PlaceNew(id);

  // --- checkout: retrieve the configuration (a read-only walk). --------
  std::printf("\ncheckout DATAPATH[1].layout:\n");
  for (obj::ObjectId c : graph.Components(datapath)) {
    std::printf("  fetched %-20s (page %u)\n",
                graph.NameOf(c).ToString().c_str(), storage.PageOf(c));
  }

  // --- edit + checkin: derive ALU[2], link it, recluster. --------------
  const auto derived = obj::DeriveVersion(graph, alu, costs);
  graph.Relate(datapath, derived.heir, obj::RelKind::kConfiguration);
  const auto placement = clusterer.PlaceNew(derived.heir);
  std::printf("\ncheckin %s:\n", graph.NameOf(derived.heir).ToString().c_str());
  std::printf("  %d attributes copied, %d by reference (heir is %u B vs "
              "%u B full)\n",
              derived.attributes_by_copy, derived.attributes_by_reference,
              graph.object(derived.heir).size_bytes,
              lattice.InstanceSize(layout));
  std::printf("  placed on page %u (%s); ancestor ALU[1] on page %u\n",
              placement.page,
              placement.appended ? "arrival order" : "clustered",
              storage.PageOf(alu));

  // A later structure change triggers run-time reclustering.
  const obj::ObjectId ctrl = graph.Create(graph.NewFamily("CTRL"), 1,
                                          layout, 220);
  clusterer.PlaceNew(ctrl);
  graph.Relate(ctrl, derived.heir, obj::RelKind::kConfiguration);
  const auto re = clusterer.Recluster(ctrl);
  std::printf("\nafter attaching CTRL[1] to ALU[2]: recluster %s\n",
              re.relocated ? "moved CTRL next to the ALU versions"
                           : "kept CTRL in place (gain below threshold)");

  std::printf("\nversion chain of ALU: ");
  for (obj::ObjectId v : graph.FamilyMembers(alu_f)) {
    std::printf("%s ", graph.NameOf(v).ToString().c_str());
  }
  std::printf("\n");
  return 0;
}
