// A netlist simulator traverses the configuration hierarchy (paper §1:
// "a simulation tool traverses the net list representation hierarchy, and
// clustering along the configuration hierarchy is best"). This example
// runs the full engineering-DB model with a configuration-heavy read mix
// and compares the three prefetch policies end to end.
//
// Build & run:  ./build/examples/netlist_simulator

#include <cstdio>

#include "core/engineering_db.h"
#include "core/experiment.h"

using namespace oodb;

int main() {
  // A simulator's workload: nearly all reads, dominated by component and
  // composite (deep) retrieval along configuration.
  workload::WorkloadConfig w;
  w.density = workload::StructureDensity::kHigh10;
  w.read_write_ratio = 170;  // bdsim/mosaico territory (Fig 3.2)
  w.read_mix = {0.10, 0.35, 0.45, 0.03, 0.03, 0.04};
  w.session_module_count = 0;  // batch simulator: every run a fresh design

  std::printf("netlist-simulator workload: R/W %.0f, %s density, deep "
              "configuration traversal\n\n",
              w.read_write_ratio, workload::StructureDensityName(w.density));
  std::printf("%-28s %14s %12s %14s\n", "prefetch policy", "response (ms)",
              "hit ratio", "prefetch I/Os");

  double rt_none = 0, rt_db = 0;
  for (auto prefetch : {buffer::PrefetchPolicy::kNone,
                        buffer::PrefetchPolicy::kWithinBuffer,
                        buffer::PrefetchPolicy::kWithinDb}) {
    core::ModelConfig cfg = core::WithWorkload(core::TestConfig(), w);
    cfg.measured_transactions = 800;
    cfg.clustering.pool = cluster::CandidatePool::kWithinDb;
    cfg.clustering.split = cluster::SplitPolicy::kLinearGreedy;
    cfg.replacement = buffer::ReplacementPolicy::kContextSensitive;
    cfg.prefetch = prefetch;
    const core::RunResult r = core::RunCell(cfg);
    std::printf("%-28s %14.1f %11.1f%% %14llu\n",
                buffer::PrefetchPolicyName(prefetch),
                r.response_time.Mean() * 1000, r.buffer_hit_ratio * 100,
                static_cast<unsigned long long>(r.prefetch_reads));
    if (prefetch == buffer::PrefetchPolicy::kNone) {
      rt_none = r.response_time.Mean();
    }
    if (prefetch == buffer::PrefetchPolicy::kWithinDb) {
      rt_db = r.response_time.Mean();
    }
  }

  std::printf("\nprefetch-within-database improves the simulator's "
              "response by %.0f%%:\ntouching a cell pulls its immediate "
              "subcomponents into the pool before the\ntraversal asks for "
              "them.\n",
              (rt_none / rt_db - 1) * 100);
  return 0;
}
