file(REMOVE_RECURSE
  "libsemclust_ocb.a"
)
