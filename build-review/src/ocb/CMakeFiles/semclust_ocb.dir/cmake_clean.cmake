file(REMOVE_RECURSE
  "CMakeFiles/semclust_ocb.dir/ocb_builder.cc.o"
  "CMakeFiles/semclust_ocb.dir/ocb_builder.cc.o.d"
  "CMakeFiles/semclust_ocb.dir/ocb_config.cc.o"
  "CMakeFiles/semclust_ocb.dir/ocb_config.cc.o.d"
  "CMakeFiles/semclust_ocb.dir/ocb_workload.cc.o"
  "CMakeFiles/semclust_ocb.dir/ocb_workload.cc.o.d"
  "libsemclust_ocb.a"
  "libsemclust_ocb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_ocb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
