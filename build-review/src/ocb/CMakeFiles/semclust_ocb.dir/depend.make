# Empty dependencies file for semclust_ocb.
# This may be replaced when dependencies are built.
