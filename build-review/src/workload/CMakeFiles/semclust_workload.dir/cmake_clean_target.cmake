file(REMOVE_RECURSE
  "libsemclust_workload.a"
)
