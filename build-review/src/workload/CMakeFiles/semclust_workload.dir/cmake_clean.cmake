file(REMOVE_RECURSE
  "CMakeFiles/semclust_workload.dir/db_builder.cc.o"
  "CMakeFiles/semclust_workload.dir/db_builder.cc.o.d"
  "CMakeFiles/semclust_workload.dir/query.cc.o"
  "CMakeFiles/semclust_workload.dir/query.cc.o.d"
  "CMakeFiles/semclust_workload.dir/workload_config.cc.o"
  "CMakeFiles/semclust_workload.dir/workload_config.cc.o.d"
  "CMakeFiles/semclust_workload.dir/workload_gen.cc.o"
  "CMakeFiles/semclust_workload.dir/workload_gen.cc.o.d"
  "libsemclust_workload.a"
  "libsemclust_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
