
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/db_builder.cc" "src/workload/CMakeFiles/semclust_workload.dir/db_builder.cc.o" "gcc" "src/workload/CMakeFiles/semclust_workload.dir/db_builder.cc.o.d"
  "/root/repo/src/workload/query.cc" "src/workload/CMakeFiles/semclust_workload.dir/query.cc.o" "gcc" "src/workload/CMakeFiles/semclust_workload.dir/query.cc.o.d"
  "/root/repo/src/workload/workload_config.cc" "src/workload/CMakeFiles/semclust_workload.dir/workload_config.cc.o" "gcc" "src/workload/CMakeFiles/semclust_workload.dir/workload_config.cc.o.d"
  "/root/repo/src/workload/workload_gen.cc" "src/workload/CMakeFiles/semclust_workload.dir/workload_gen.cc.o" "gcc" "src/workload/CMakeFiles/semclust_workload.dir/workload_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/cluster/CMakeFiles/semclust_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/buffer/CMakeFiles/semclust_buffer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/objmodel/CMakeFiles/semclust_objmodel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/semclust_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/semclust_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/semclust_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/semclust_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
