# Empty dependencies file for semclust_workload.
# This may be replaced when dependencies are built.
