file(REMOVE_RECURSE
  "libsemclust_oct.a"
)
