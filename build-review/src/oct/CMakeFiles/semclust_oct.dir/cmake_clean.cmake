file(REMOVE_RECURSE
  "CMakeFiles/semclust_oct.dir/oct_model.cc.o"
  "CMakeFiles/semclust_oct.dir/oct_model.cc.o.d"
  "CMakeFiles/semclust_oct.dir/oct_tools.cc.o"
  "CMakeFiles/semclust_oct.dir/oct_tools.cc.o.d"
  "CMakeFiles/semclust_oct.dir/trace.cc.o"
  "CMakeFiles/semclust_oct.dir/trace.cc.o.d"
  "CMakeFiles/semclust_oct.dir/trace_analyzer.cc.o"
  "CMakeFiles/semclust_oct.dir/trace_analyzer.cc.o.d"
  "libsemclust_oct.a"
  "libsemclust_oct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_oct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
