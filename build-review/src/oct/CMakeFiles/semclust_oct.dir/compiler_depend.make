# Empty compiler generated dependencies file for semclust_oct.
# This may be replaced when dependencies are built.
