
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oct/oct_model.cc" "src/oct/CMakeFiles/semclust_oct.dir/oct_model.cc.o" "gcc" "src/oct/CMakeFiles/semclust_oct.dir/oct_model.cc.o.d"
  "/root/repo/src/oct/oct_tools.cc" "src/oct/CMakeFiles/semclust_oct.dir/oct_tools.cc.o" "gcc" "src/oct/CMakeFiles/semclust_oct.dir/oct_tools.cc.o.d"
  "/root/repo/src/oct/trace.cc" "src/oct/CMakeFiles/semclust_oct.dir/trace.cc.o" "gcc" "src/oct/CMakeFiles/semclust_oct.dir/trace.cc.o.d"
  "/root/repo/src/oct/trace_analyzer.cc" "src/oct/CMakeFiles/semclust_oct.dir/trace_analyzer.cc.o" "gcc" "src/oct/CMakeFiles/semclust_oct.dir/trace_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/semclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
