file(REMOVE_RECURSE
  "libsemclust_sim.a"
)
