file(REMOVE_RECURSE
  "CMakeFiles/semclust_sim.dir/event_calendar.cc.o"
  "CMakeFiles/semclust_sim.dir/event_calendar.cc.o.d"
  "CMakeFiles/semclust_sim.dir/resource.cc.o"
  "CMakeFiles/semclust_sim.dir/resource.cc.o.d"
  "CMakeFiles/semclust_sim.dir/simulator.cc.o"
  "CMakeFiles/semclust_sim.dir/simulator.cc.o.d"
  "libsemclust_sim.a"
  "libsemclust_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
