# Empty compiler generated dependencies file for semclust_sim.
# This may be replaced when dependencies are built.
