file(REMOVE_RECURSE
  "CMakeFiles/semclust_objmodel.dir/inheritance.cc.o"
  "CMakeFiles/semclust_objmodel.dir/inheritance.cc.o.d"
  "CMakeFiles/semclust_objmodel.dir/object_graph.cc.o"
  "CMakeFiles/semclust_objmodel.dir/object_graph.cc.o.d"
  "CMakeFiles/semclust_objmodel.dir/object_id.cc.o"
  "CMakeFiles/semclust_objmodel.dir/object_id.cc.o.d"
  "CMakeFiles/semclust_objmodel.dir/type_system.cc.o"
  "CMakeFiles/semclust_objmodel.dir/type_system.cc.o.d"
  "CMakeFiles/semclust_objmodel.dir/validator.cc.o"
  "CMakeFiles/semclust_objmodel.dir/validator.cc.o.d"
  "libsemclust_objmodel.a"
  "libsemclust_objmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_objmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
