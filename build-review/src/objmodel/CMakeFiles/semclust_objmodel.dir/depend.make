# Empty dependencies file for semclust_objmodel.
# This may be replaced when dependencies are built.
