file(REMOVE_RECURSE
  "libsemclust_objmodel.a"
)
