
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objmodel/inheritance.cc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/inheritance.cc.o" "gcc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/inheritance.cc.o.d"
  "/root/repo/src/objmodel/object_graph.cc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/object_graph.cc.o" "gcc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/object_graph.cc.o.d"
  "/root/repo/src/objmodel/object_id.cc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/object_id.cc.o" "gcc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/object_id.cc.o.d"
  "/root/repo/src/objmodel/type_system.cc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/type_system.cc.o" "gcc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/type_system.cc.o.d"
  "/root/repo/src/objmodel/validator.cc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/validator.cc.o" "gcc" "src/objmodel/CMakeFiles/semclust_objmodel.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/semclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
