# Empty compiler generated dependencies file for semclust_cluster.
# This may be replaced when dependencies are built.
