
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/affinity.cc" "src/cluster/CMakeFiles/semclust_cluster.dir/affinity.cc.o" "gcc" "src/cluster/CMakeFiles/semclust_cluster.dir/affinity.cc.o.d"
  "/root/repo/src/cluster/cluster_manager.cc" "src/cluster/CMakeFiles/semclust_cluster.dir/cluster_manager.cc.o" "gcc" "src/cluster/CMakeFiles/semclust_cluster.dir/cluster_manager.cc.o.d"
  "/root/repo/src/cluster/dependency_graph.cc" "src/cluster/CMakeFiles/semclust_cluster.dir/dependency_graph.cc.o" "gcc" "src/cluster/CMakeFiles/semclust_cluster.dir/dependency_graph.cc.o.d"
  "/root/repo/src/cluster/page_splitter.cc" "src/cluster/CMakeFiles/semclust_cluster.dir/page_splitter.cc.o" "gcc" "src/cluster/CMakeFiles/semclust_cluster.dir/page_splitter.cc.o.d"
  "/root/repo/src/cluster/policy.cc" "src/cluster/CMakeFiles/semclust_cluster.dir/policy.cc.o" "gcc" "src/cluster/CMakeFiles/semclust_cluster.dir/policy.cc.o.d"
  "/root/repo/src/cluster/static_clusterer.cc" "src/cluster/CMakeFiles/semclust_cluster.dir/static_clusterer.cc.o" "gcc" "src/cluster/CMakeFiles/semclust_cluster.dir/static_clusterer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/buffer/CMakeFiles/semclust_buffer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/semclust_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/objmodel/CMakeFiles/semclust_objmodel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/semclust_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/semclust_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/semclust_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
