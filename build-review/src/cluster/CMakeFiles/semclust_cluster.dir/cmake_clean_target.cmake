file(REMOVE_RECURSE
  "libsemclust_cluster.a"
)
