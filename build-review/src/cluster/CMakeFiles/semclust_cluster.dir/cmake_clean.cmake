file(REMOVE_RECURSE
  "CMakeFiles/semclust_cluster.dir/affinity.cc.o"
  "CMakeFiles/semclust_cluster.dir/affinity.cc.o.d"
  "CMakeFiles/semclust_cluster.dir/cluster_manager.cc.o"
  "CMakeFiles/semclust_cluster.dir/cluster_manager.cc.o.d"
  "CMakeFiles/semclust_cluster.dir/dependency_graph.cc.o"
  "CMakeFiles/semclust_cluster.dir/dependency_graph.cc.o.d"
  "CMakeFiles/semclust_cluster.dir/page_splitter.cc.o"
  "CMakeFiles/semclust_cluster.dir/page_splitter.cc.o.d"
  "CMakeFiles/semclust_cluster.dir/policy.cc.o"
  "CMakeFiles/semclust_cluster.dir/policy.cc.o.d"
  "CMakeFiles/semclust_cluster.dir/static_clusterer.cc.o"
  "CMakeFiles/semclust_cluster.dir/static_clusterer.cc.o.d"
  "libsemclust_cluster.a"
  "libsemclust_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
