file(REMOVE_RECURSE
  "libsemclust_storage.a"
)
