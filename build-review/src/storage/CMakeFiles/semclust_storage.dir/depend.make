# Empty dependencies file for semclust_storage.
# This may be replaced when dependencies are built.
