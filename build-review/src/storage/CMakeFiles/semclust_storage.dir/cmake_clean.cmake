file(REMOVE_RECURSE
  "CMakeFiles/semclust_storage.dir/page.cc.o"
  "CMakeFiles/semclust_storage.dir/page.cc.o.d"
  "CMakeFiles/semclust_storage.dir/storage_manager.cc.o"
  "CMakeFiles/semclust_storage.dir/storage_manager.cc.o.d"
  "libsemclust_storage.a"
  "libsemclust_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
