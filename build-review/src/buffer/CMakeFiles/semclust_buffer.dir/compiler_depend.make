# Empty compiler generated dependencies file for semclust_buffer.
# This may be replaced when dependencies are built.
