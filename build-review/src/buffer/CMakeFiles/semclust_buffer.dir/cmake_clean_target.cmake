file(REMOVE_RECURSE
  "libsemclust_buffer.a"
)
