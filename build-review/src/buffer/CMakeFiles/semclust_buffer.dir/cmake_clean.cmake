file(REMOVE_RECURSE
  "CMakeFiles/semclust_buffer.dir/buffer_pool.cc.o"
  "CMakeFiles/semclust_buffer.dir/buffer_pool.cc.o.d"
  "CMakeFiles/semclust_buffer.dir/prefetcher.cc.o"
  "CMakeFiles/semclust_buffer.dir/prefetcher.cc.o.d"
  "libsemclust_buffer.a"
  "libsemclust_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
