file(REMOVE_RECURSE
  "CMakeFiles/semclust_obs.dir/metrics.cc.o"
  "CMakeFiles/semclust_obs.dir/metrics.cc.o.d"
  "CMakeFiles/semclust_obs.dir/placement_auditor.cc.o"
  "CMakeFiles/semclust_obs.dir/placement_auditor.cc.o.d"
  "CMakeFiles/semclust_obs.dir/time_series.cc.o"
  "CMakeFiles/semclust_obs.dir/time_series.cc.o.d"
  "CMakeFiles/semclust_obs.dir/trace_sink.cc.o"
  "CMakeFiles/semclust_obs.dir/trace_sink.cc.o.d"
  "libsemclust_obs.a"
  "libsemclust_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
