file(REMOVE_RECURSE
  "libsemclust_obs.a"
)
