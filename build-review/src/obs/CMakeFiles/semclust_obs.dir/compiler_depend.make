# Empty compiler generated dependencies file for semclust_obs.
# This may be replaced when dependencies are built.
