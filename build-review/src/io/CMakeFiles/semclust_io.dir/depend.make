# Empty dependencies file for semclust_io.
# This may be replaced when dependencies are built.
