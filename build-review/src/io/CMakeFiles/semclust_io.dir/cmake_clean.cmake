file(REMOVE_RECURSE
  "CMakeFiles/semclust_io.dir/io_subsystem.cc.o"
  "CMakeFiles/semclust_io.dir/io_subsystem.cc.o.d"
  "libsemclust_io.a"
  "libsemclust_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
