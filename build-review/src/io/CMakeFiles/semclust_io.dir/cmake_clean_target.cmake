file(REMOVE_RECURSE
  "libsemclust_io.a"
)
