file(REMOVE_RECURSE
  "libsemclust_core.a"
)
