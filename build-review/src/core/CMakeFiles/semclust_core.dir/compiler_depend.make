# Empty compiler generated dependencies file for semclust_core.
# This may be replaced when dependencies are built.
