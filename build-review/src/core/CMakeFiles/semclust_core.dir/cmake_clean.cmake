file(REMOVE_RECURSE
  "CMakeFiles/semclust_core.dir/bench_report.cc.o"
  "CMakeFiles/semclust_core.dir/bench_report.cc.o.d"
  "CMakeFiles/semclust_core.dir/engineering_db.cc.o"
  "CMakeFiles/semclust_core.dir/engineering_db.cc.o.d"
  "CMakeFiles/semclust_core.dir/experiment.cc.o"
  "CMakeFiles/semclust_core.dir/experiment.cc.o.d"
  "CMakeFiles/semclust_core.dir/measurement.cc.o"
  "CMakeFiles/semclust_core.dir/measurement.cc.o.d"
  "CMakeFiles/semclust_core.dir/model_config.cc.o"
  "CMakeFiles/semclust_core.dir/model_config.cc.o.d"
  "CMakeFiles/semclust_core.dir/policy_registry.cc.o"
  "CMakeFiles/semclust_core.dir/policy_registry.cc.o.d"
  "CMakeFiles/semclust_core.dir/report.cc.o"
  "CMakeFiles/semclust_core.dir/report.cc.o.d"
  "CMakeFiles/semclust_core.dir/scenario.cc.o"
  "CMakeFiles/semclust_core.dir/scenario.cc.o.d"
  "CMakeFiles/semclust_core.dir/server_context.cc.o"
  "CMakeFiles/semclust_core.dir/server_context.cc.o.d"
  "CMakeFiles/semclust_core.dir/txn_pipeline.cc.o"
  "CMakeFiles/semclust_core.dir/txn_pipeline.cc.o.d"
  "libsemclust_core.a"
  "libsemclust_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
