
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bench_report.cc" "src/core/CMakeFiles/semclust_core.dir/bench_report.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/bench_report.cc.o.d"
  "/root/repo/src/core/engineering_db.cc" "src/core/CMakeFiles/semclust_core.dir/engineering_db.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/engineering_db.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/semclust_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/measurement.cc" "src/core/CMakeFiles/semclust_core.dir/measurement.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/measurement.cc.o.d"
  "/root/repo/src/core/model_config.cc" "src/core/CMakeFiles/semclust_core.dir/model_config.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/model_config.cc.o.d"
  "/root/repo/src/core/policy_registry.cc" "src/core/CMakeFiles/semclust_core.dir/policy_registry.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/policy_registry.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/semclust_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/report.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/semclust_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/server_context.cc" "src/core/CMakeFiles/semclust_core.dir/server_context.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/server_context.cc.o.d"
  "/root/repo/src/core/txn_pipeline.cc" "src/core/CMakeFiles/semclust_core.dir/txn_pipeline.cc.o" "gcc" "src/core/CMakeFiles/semclust_core.dir/txn_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ocb/CMakeFiles/semclust_ocb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/semclust_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cluster/CMakeFiles/semclust_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/buffer/CMakeFiles/semclust_buffer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/txlog/CMakeFiles/semclust_txlog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/semclust_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/semclust_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/semclust_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/semclust_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/objmodel/CMakeFiles/semclust_objmodel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/semclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
