file(REMOVE_RECURSE
  "CMakeFiles/semclust_exec.dir/experiment_runner.cc.o"
  "CMakeFiles/semclust_exec.dir/experiment_runner.cc.o.d"
  "CMakeFiles/semclust_exec.dir/thread_pool.cc.o"
  "CMakeFiles/semclust_exec.dir/thread_pool.cc.o.d"
  "libsemclust_exec.a"
  "libsemclust_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
