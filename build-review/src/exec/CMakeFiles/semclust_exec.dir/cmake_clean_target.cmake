file(REMOVE_RECURSE
  "libsemclust_exec.a"
)
