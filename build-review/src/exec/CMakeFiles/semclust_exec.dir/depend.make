# Empty dependencies file for semclust_exec.
# This may be replaced when dependencies are built.
