# Empty compiler generated dependencies file for semclust_util.
# This may be replaced when dependencies are built.
