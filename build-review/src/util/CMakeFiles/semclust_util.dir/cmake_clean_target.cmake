file(REMOVE_RECURSE
  "libsemclust_util.a"
)
