file(REMOVE_RECURSE
  "CMakeFiles/semclust_util.dir/json_reader.cc.o"
  "CMakeFiles/semclust_util.dir/json_reader.cc.o.d"
  "CMakeFiles/semclust_util.dir/json_writer.cc.o"
  "CMakeFiles/semclust_util.dir/json_writer.cc.o.d"
  "CMakeFiles/semclust_util.dir/random.cc.o"
  "CMakeFiles/semclust_util.dir/random.cc.o.d"
  "CMakeFiles/semclust_util.dir/stats.cc.o"
  "CMakeFiles/semclust_util.dir/stats.cc.o.d"
  "CMakeFiles/semclust_util.dir/status.cc.o"
  "CMakeFiles/semclust_util.dir/status.cc.o.d"
  "CMakeFiles/semclust_util.dir/table_printer.cc.o"
  "CMakeFiles/semclust_util.dir/table_printer.cc.o.d"
  "libsemclust_util.a"
  "libsemclust_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
