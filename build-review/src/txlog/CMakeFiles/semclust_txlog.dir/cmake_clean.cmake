file(REMOVE_RECURSE
  "CMakeFiles/semclust_txlog.dir/log_manager.cc.o"
  "CMakeFiles/semclust_txlog.dir/log_manager.cc.o.d"
  "CMakeFiles/semclust_txlog.dir/recovery.cc.o"
  "CMakeFiles/semclust_txlog.dir/recovery.cc.o.d"
  "libsemclust_txlog.a"
  "libsemclust_txlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_txlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
