# Empty dependencies file for semclust_txlog.
# This may be replaced when dependencies are built.
