file(REMOVE_RECURSE
  "libsemclust_txlog.a"
)
