
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txlog/log_manager.cc" "src/txlog/CMakeFiles/semclust_txlog.dir/log_manager.cc.o" "gcc" "src/txlog/CMakeFiles/semclust_txlog.dir/log_manager.cc.o.d"
  "/root/repo/src/txlog/recovery.cc" "src/txlog/CMakeFiles/semclust_txlog.dir/recovery.cc.o" "gcc" "src/txlog/CMakeFiles/semclust_txlog.dir/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/obs/CMakeFiles/semclust_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/semclust_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/semclust_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/semclust_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/objmodel/CMakeFiles/semclust_objmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
