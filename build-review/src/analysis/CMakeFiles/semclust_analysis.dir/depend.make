# Empty dependencies file for semclust_analysis.
# This may be replaced when dependencies are built.
