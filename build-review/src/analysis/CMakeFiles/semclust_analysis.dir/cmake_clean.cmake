file(REMOVE_RECURSE
  "CMakeFiles/semclust_analysis.dir/factorial.cc.o"
  "CMakeFiles/semclust_analysis.dir/factorial.cc.o.d"
  "CMakeFiles/semclust_analysis.dir/fractional.cc.o"
  "CMakeFiles/semclust_analysis.dir/fractional.cc.o.d"
  "libsemclust_analysis.a"
  "libsemclust_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
