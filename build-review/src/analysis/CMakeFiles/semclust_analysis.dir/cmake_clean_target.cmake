file(REMOVE_RECURSE
  "libsemclust_analysis.a"
)
