file(REMOVE_RECURSE
  "../bench/bench_table4_1_parameters"
  "../bench/bench_table4_1_parameters.pdb"
  "CMakeFiles/bench_table4_1_parameters.dir/bench_table4_1_parameters.cc.o"
  "CMakeFiles/bench_table4_1_parameters.dir/bench_table4_1_parameters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_1_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
