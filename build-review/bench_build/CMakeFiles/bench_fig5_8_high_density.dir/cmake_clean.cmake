file(REMOVE_RECURSE
  "../bench/bench_fig5_8_high_density"
  "../bench/bench_fig5_8_high_density.pdb"
  "CMakeFiles/bench_fig5_8_high_density.dir/bench_fig5_8_high_density.cc.o"
  "CMakeFiles/bench_fig5_8_high_density.dir/bench_fig5_8_high_density.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_8_high_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
