# Empty compiler generated dependencies file for bench_fig5_8_high_density.
# This may be replaced when dependencies are built.
