file(REMOVE_RECURSE
  "../bench/bench_fig5_3_rw10"
  "../bench/bench_fig5_3_rw10.pdb"
  "CMakeFiles/bench_fig5_3_rw10.dir/bench_fig5_3_rw10.cc.o"
  "CMakeFiles/bench_fig5_3_rw10.dir/bench_fig5_3_rw10.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_3_rw10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
