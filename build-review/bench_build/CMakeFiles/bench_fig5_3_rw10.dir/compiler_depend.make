# Empty compiler generated dependencies file for bench_fig5_3_rw10.
# This may be replaced when dependencies are built.
