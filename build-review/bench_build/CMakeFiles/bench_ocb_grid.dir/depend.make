# Empty dependencies file for bench_ocb_grid.
# This may be replaced when dependencies are built.
