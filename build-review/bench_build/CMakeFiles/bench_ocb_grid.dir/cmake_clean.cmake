file(REMOVE_RECURSE
  "../bench/bench_ocb_grid"
  "../bench/bench_ocb_grid.pdb"
  "CMakeFiles/bench_ocb_grid.dir/bench_ocb_grid.cc.o"
  "CMakeFiles/bench_ocb_grid.dir/bench_ocb_grid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ocb_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
