# Empty compiler generated dependencies file for bench_table5_1_breakeven.
# This may be replaced when dependencies are built.
