file(REMOVE_RECURSE
  "../bench/bench_table5_1_breakeven"
  "../bench/bench_table5_1_breakeven.pdb"
  "CMakeFiles/bench_table5_1_breakeven.dir/bench_table5_1_breakeven.cc.o"
  "CMakeFiles/bench_table5_1_breakeven.dir/bench_table5_1_breakeven.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_1_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
