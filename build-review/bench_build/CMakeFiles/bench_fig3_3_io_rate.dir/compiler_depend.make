# Empty compiler generated dependencies file for bench_fig3_3_io_rate.
# This may be replaced when dependencies are built.
