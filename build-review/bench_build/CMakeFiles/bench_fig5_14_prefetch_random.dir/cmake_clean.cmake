file(REMOVE_RECURSE
  "../bench/bench_fig5_14_prefetch_random"
  "../bench/bench_fig5_14_prefetch_random.pdb"
  "CMakeFiles/bench_fig5_14_prefetch_random.dir/bench_fig5_14_prefetch_random.cc.o"
  "CMakeFiles/bench_fig5_14_prefetch_random.dir/bench_fig5_14_prefetch_random.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_14_prefetch_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
