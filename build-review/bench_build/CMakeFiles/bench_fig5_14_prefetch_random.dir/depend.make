# Empty dependencies file for bench_fig5_14_prefetch_random.
# This may be replaced when dependencies are built.
