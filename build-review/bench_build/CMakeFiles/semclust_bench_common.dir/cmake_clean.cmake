file(REMOVE_RECURSE
  "CMakeFiles/semclust_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/semclust_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/semclust_bench_common.dir/bench_prefetch_common.cc.o"
  "CMakeFiles/semclust_bench_common.dir/bench_prefetch_common.cc.o.d"
  "libsemclust_bench_common.a"
  "libsemclust_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
