# Empty compiler generated dependencies file for semclust_bench_common.
# This may be replaced when dependencies are built.
