file(REMOVE_RECURSE
  "libsemclust_bench_common.a"
)
