# Empty dependencies file for bench_fig5_11_buffering_effects.
# This may be replaced when dependencies are built.
