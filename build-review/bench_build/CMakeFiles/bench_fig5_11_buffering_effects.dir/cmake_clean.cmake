file(REMOVE_RECURSE
  "../bench/bench_fig5_11_buffering_effects"
  "../bench/bench_fig5_11_buffering_effects.pdb"
  "CMakeFiles/bench_fig5_11_buffering_effects.dir/bench_fig5_11_buffering_effects.cc.o"
  "CMakeFiles/bench_fig5_11_buffering_effects.dir/bench_fig5_11_buffering_effects.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_11_buffering_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
