file(REMOVE_RECURSE
  "../bench/bench_fig6_2_interactions"
  "../bench/bench_fig6_2_interactions.pdb"
  "CMakeFiles/bench_fig6_2_interactions.dir/bench_fig6_2_interactions.cc.o"
  "CMakeFiles/bench_fig6_2_interactions.dir/bench_fig6_2_interactions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_2_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
