# Empty compiler generated dependencies file for bench_fig6_2_interactions.
# This may be replaced when dependencies are built.
