# Empty compiler generated dependencies file for bench_fig3_2_rw_ratio.
# This may be replaced when dependencies are built.
