file(REMOVE_RECURSE
  "../bench/bench_fig5_5_logging_io"
  "../bench/bench_fig5_5_logging_io.pdb"
  "CMakeFiles/bench_fig5_5_logging_io.dir/bench_fig5_5_logging_io.cc.o"
  "CMakeFiles/bench_fig5_5_logging_io.dir/bench_fig5_5_logging_io.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_5_logging_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
