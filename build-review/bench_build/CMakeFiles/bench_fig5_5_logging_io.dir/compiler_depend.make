# Empty compiler generated dependencies file for bench_fig5_5_logging_io.
# This may be replaced when dependencies are built.
