# Empty compiler generated dependencies file for bench_fig5_7_med_density.
# This may be replaced when dependencies are built.
