file(REMOVE_RECURSE
  "../bench/bench_fig5_4_rw100"
  "../bench/bench_fig5_4_rw100.pdb"
  "CMakeFiles/bench_fig5_4_rw100.dir/bench_fig5_4_rw100.cc.o"
  "CMakeFiles/bench_fig5_4_rw100.dir/bench_fig5_4_rw100.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_4_rw100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
