# Empty dependencies file for bench_fig5_4_rw100.
# This may be replaced when dependencies are built.
