file(REMOVE_RECURSE
  "../bench/bench_fig5_12_prefetch_context"
  "../bench/bench_fig5_12_prefetch_context.pdb"
  "CMakeFiles/bench_fig5_12_prefetch_context.dir/bench_fig5_12_prefetch_context.cc.o"
  "CMakeFiles/bench_fig5_12_prefetch_context.dir/bench_fig5_12_prefetch_context.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_12_prefetch_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
