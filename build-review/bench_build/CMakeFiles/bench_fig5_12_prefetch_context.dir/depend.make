# Empty dependencies file for bench_fig5_12_prefetch_context.
# This may be replaced when dependencies are built.
