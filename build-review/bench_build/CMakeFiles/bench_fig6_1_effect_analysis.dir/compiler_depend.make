# Empty compiler generated dependencies file for bench_fig6_1_effect_analysis.
# This may be replaced when dependencies are built.
