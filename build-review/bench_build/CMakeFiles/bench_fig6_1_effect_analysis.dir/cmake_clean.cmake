file(REMOVE_RECURSE
  "../bench/bench_fig6_1_effect_analysis"
  "../bench/bench_fig6_1_effect_analysis.pdb"
  "CMakeFiles/bench_fig6_1_effect_analysis.dir/bench_fig6_1_effect_analysis.cc.o"
  "CMakeFiles/bench_fig6_1_effect_analysis.dir/bench_fig6_1_effect_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_1_effect_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
