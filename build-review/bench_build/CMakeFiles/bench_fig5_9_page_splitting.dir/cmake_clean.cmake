file(REMOVE_RECURSE
  "../bench/bench_fig5_9_page_splitting"
  "../bench/bench_fig5_9_page_splitting.pdb"
  "CMakeFiles/bench_fig5_9_page_splitting.dir/bench_fig5_9_page_splitting.cc.o"
  "CMakeFiles/bench_fig5_9_page_splitting.dir/bench_fig5_9_page_splitting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_9_page_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
