# Empty dependencies file for bench_fig5_9_page_splitting.
# This may be replaced when dependencies are built.
