# Empty compiler generated dependencies file for bench_fig5_1_clustering_effects.
# This may be replaced when dependencies are built.
