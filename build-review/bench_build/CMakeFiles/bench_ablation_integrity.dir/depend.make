# Empty dependencies file for bench_ablation_integrity.
# This may be replaced when dependencies are built.
