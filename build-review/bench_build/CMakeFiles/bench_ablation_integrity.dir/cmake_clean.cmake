file(REMOVE_RECURSE
  "../bench/bench_ablation_integrity"
  "../bench/bench_ablation_integrity.pdb"
  "CMakeFiles/bench_ablation_integrity.dir/bench_ablation_integrity.cc.o"
  "CMakeFiles/bench_ablation_integrity.dir/bench_ablation_integrity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
