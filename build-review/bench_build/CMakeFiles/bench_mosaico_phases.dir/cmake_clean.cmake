file(REMOVE_RECURSE
  "../bench/bench_mosaico_phases"
  "../bench/bench_mosaico_phases.pdb"
  "CMakeFiles/bench_mosaico_phases.dir/bench_mosaico_phases.cc.o"
  "CMakeFiles/bench_mosaico_phases.dir/bench_mosaico_phases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mosaico_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
