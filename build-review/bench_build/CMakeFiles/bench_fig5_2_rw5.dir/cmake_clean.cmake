file(REMOVE_RECURSE
  "../bench/bench_fig5_2_rw5"
  "../bench/bench_fig5_2_rw5.pdb"
  "CMakeFiles/bench_fig5_2_rw5.dir/bench_fig5_2_rw5.cc.o"
  "CMakeFiles/bench_fig5_2_rw5.dir/bench_fig5_2_rw5.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_2_rw5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
