# Empty dependencies file for bench_fig5_10_split_cost.
# This may be replaced when dependencies are built.
