file(REMOVE_RECURSE
  "../bench/bench_fig5_10_split_cost"
  "../bench/bench_fig5_10_split_cost.pdb"
  "CMakeFiles/bench_fig5_10_split_cost.dir/bench_fig5_10_split_cost.cc.o"
  "CMakeFiles/bench_fig5_10_split_cost.dir/bench_fig5_10_split_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_10_split_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
