# Empty dependencies file for bench_fig5_13_prefetch_lru.
# This may be replaced when dependencies are built.
