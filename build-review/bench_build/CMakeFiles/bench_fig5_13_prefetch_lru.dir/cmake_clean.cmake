file(REMOVE_RECURSE
  "../bench/bench_fig5_13_prefetch_lru"
  "../bench/bench_fig5_13_prefetch_lru.pdb"
  "CMakeFiles/bench_fig5_13_prefetch_lru.dir/bench_fig5_13_prefetch_lru.cc.o"
  "CMakeFiles/bench_fig5_13_prefetch_lru.dir/bench_fig5_13_prefetch_lru.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_13_prefetch_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
