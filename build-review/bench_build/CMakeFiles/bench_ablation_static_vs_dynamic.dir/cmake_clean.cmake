file(REMOVE_RECURSE
  "../bench/bench_ablation_static_vs_dynamic"
  "../bench/bench_ablation_static_vs_dynamic.pdb"
  "CMakeFiles/bench_ablation_static_vs_dynamic.dir/bench_ablation_static_vs_dynamic.cc.o"
  "CMakeFiles/bench_ablation_static_vs_dynamic.dir/bench_ablation_static_vs_dynamic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_static_vs_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
