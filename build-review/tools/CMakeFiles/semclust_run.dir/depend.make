# Empty dependencies file for semclust_run.
# This may be replaced when dependencies are built.
