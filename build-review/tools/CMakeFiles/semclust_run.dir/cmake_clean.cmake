file(REMOVE_RECURSE
  "CMakeFiles/semclust_run.dir/semclust_run.cc.o"
  "CMakeFiles/semclust_run.dir/semclust_run.cc.o.d"
  "semclust_run"
  "semclust_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semclust_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
