# Empty dependencies file for trace_summary.
# This may be replaced when dependencies are built.
