file(REMOVE_RECURSE
  "CMakeFiles/trace_summary.dir/trace_summary.cc.o"
  "CMakeFiles/trace_summary.dir/trace_summary.cc.o.d"
  "trace_summary"
  "trace_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
