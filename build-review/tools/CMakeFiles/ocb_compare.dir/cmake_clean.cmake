file(REMOVE_RECURSE
  "CMakeFiles/ocb_compare.dir/ocb_compare.cc.o"
  "CMakeFiles/ocb_compare.dir/ocb_compare.cc.o.d"
  "ocb_compare"
  "ocb_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
