# Empty compiler generated dependencies file for ocb_compare.
# This may be replaced when dependencies are built.
