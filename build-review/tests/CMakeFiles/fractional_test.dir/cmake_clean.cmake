file(REMOVE_RECURSE
  "CMakeFiles/fractional_test.dir/fractional_test.cc.o"
  "CMakeFiles/fractional_test.dir/fractional_test.cc.o.d"
  "fractional_test"
  "fractional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
