# Empty dependencies file for fractional_test.
# This may be replaced when dependencies are built.
