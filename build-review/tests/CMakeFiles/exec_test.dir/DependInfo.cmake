
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/exec_test.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/semclust_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/semclust_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/semclust_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/objmodel/CMakeFiles/semclust_objmodel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/semclust_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/semclust_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/buffer/CMakeFiles/semclust_buffer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/txlog/CMakeFiles/semclust_txlog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cluster/CMakeFiles/semclust_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/semclust_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/semclust_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/exec/CMakeFiles/semclust_exec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/oct/CMakeFiles/semclust_oct.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/semclust_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ocb/CMakeFiles/semclust_ocb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
