# Empty dependencies file for txlog_test.
# This may be replaced when dependencies are built.
