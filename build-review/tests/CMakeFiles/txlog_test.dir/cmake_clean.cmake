file(REMOVE_RECURSE
  "CMakeFiles/txlog_test.dir/txlog_test.cc.o"
  "CMakeFiles/txlog_test.dir/txlog_test.cc.o.d"
  "txlog_test"
  "txlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
