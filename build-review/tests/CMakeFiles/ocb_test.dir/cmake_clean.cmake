file(REMOVE_RECURSE
  "CMakeFiles/ocb_test.dir/ocb_test.cc.o"
  "CMakeFiles/ocb_test.dir/ocb_test.cc.o.d"
  "ocb_test"
  "ocb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
