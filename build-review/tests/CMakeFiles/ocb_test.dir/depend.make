# Empty dependencies file for ocb_test.
# This may be replaced when dependencies are built.
