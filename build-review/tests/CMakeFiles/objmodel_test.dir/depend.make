# Empty dependencies file for objmodel_test.
# This may be replaced when dependencies are built.
