file(REMOVE_RECURSE
  "CMakeFiles/objmodel_test.dir/objmodel_test.cc.o"
  "CMakeFiles/objmodel_test.dir/objmodel_test.cc.o.d"
  "objmodel_test"
  "objmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
