# Empty compiler generated dependencies file for static_cluster_test.
# This may be replaced when dependencies are built.
