file(REMOVE_RECURSE
  "CMakeFiles/static_cluster_test.dir/static_cluster_test.cc.o"
  "CMakeFiles/static_cluster_test.dir/static_cluster_test.cc.o.d"
  "static_cluster_test"
  "static_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
