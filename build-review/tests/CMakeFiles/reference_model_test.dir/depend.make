# Empty dependencies file for reference_model_test.
# This may be replaced when dependencies are built.
