file(REMOVE_RECURSE
  "CMakeFiles/reference_model_test.dir/reference_model_test.cc.o"
  "CMakeFiles/reference_model_test.dir/reference_model_test.cc.o.d"
  "reference_model_test"
  "reference_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
