# Empty dependencies file for oct_trace_analysis.
# This may be replaced when dependencies are built.
