file(REMOVE_RECURSE
  "CMakeFiles/oct_trace_analysis.dir/oct_trace_analysis.cpp.o"
  "CMakeFiles/oct_trace_analysis.dir/oct_trace_analysis.cpp.o.d"
  "oct_trace_analysis"
  "oct_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oct_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
