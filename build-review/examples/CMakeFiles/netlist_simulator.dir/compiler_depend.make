# Empty compiler generated dependencies file for netlist_simulator.
# This may be replaced when dependencies are built.
