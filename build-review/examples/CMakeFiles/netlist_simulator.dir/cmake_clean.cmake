file(REMOVE_RECURSE
  "CMakeFiles/netlist_simulator.dir/netlist_simulator.cpp.o"
  "CMakeFiles/netlist_simulator.dir/netlist_simulator.cpp.o.d"
  "netlist_simulator"
  "netlist_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
