# Empty compiler generated dependencies file for factorial_screening.
# This may be replaced when dependencies are built.
