file(REMOVE_RECURSE
  "CMakeFiles/factorial_screening.dir/factorial_screening.cpp.o"
  "CMakeFiles/factorial_screening.dir/factorial_screening.cpp.o.d"
  "factorial_screening"
  "factorial_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factorial_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
