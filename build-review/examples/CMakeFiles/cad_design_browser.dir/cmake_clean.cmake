file(REMOVE_RECURSE
  "CMakeFiles/cad_design_browser.dir/cad_design_browser.cpp.o"
  "CMakeFiles/cad_design_browser.dir/cad_design_browser.cpp.o.d"
  "cad_design_browser"
  "cad_design_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_design_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
