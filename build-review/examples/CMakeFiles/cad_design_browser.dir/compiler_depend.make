# Empty compiler generated dependencies file for cad_design_browser.
# This may be replaced when dependencies are built.
