# Empty compiler generated dependencies file for versioned_checkin_checkout.
# This may be replaced when dependencies are built.
