file(REMOVE_RECURSE
  "CMakeFiles/versioned_checkin_checkout.dir/versioned_checkin_checkout.cpp.o"
  "CMakeFiles/versioned_checkin_checkout.dir/versioned_checkin_checkout.cpp.o.d"
  "versioned_checkin_checkout"
  "versioned_checkin_checkout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_checkin_checkout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
