// Field-by-field comparison of two semclust bench JSONL files
// (SEMCLUST_BENCH_JSON output) with per-metric relative tolerances — the
// CI regression gate that keeps metric and perf drift from accumulating
// silently.
//
// Usage:
//   bench_diff [options] <a.jsonl> <b.jsonl>
//   bench_diff --baseline <baseline.jsonl> [options] <current.jsonl>
//
// Options:
//   --rtol <x>       default relative tolerance for numeric fields
//                    (default 0: exact, the jobs=1 vs jobs=4 gate)
//   --tol <k=x>      tolerance override for fields whose flattened path
//                    matches k (suffix '*' = prefix match; x may be
//                    "ignore"). Most-specific (longest) pattern wins.
//   --max-report <n> mismatch lines printed before eliding (default 20)
//   --allow-new-keys fields present only in the second (candidate) file
//                    are reported as notes instead of failing — the gate
//                    for comparing a pre-telemetry baseline against a
//                    build that emits new keys
//
// Records are JSON objects, one per line, matched across files by
// (bench, cell_label, occurrence). Every record is flattened to
// path -> scalar (objects by ".", arrays by "[i]"), and paths are
// compared pairwise. In --baseline mode, fields present only in the
// current file are allowed (new telemetry never breaks the gate);
// fields present only in the baseline fail. Outside --baseline mode any
// asymmetry fails unless --allow-new-keys downgrades candidate-only
// fields to notes. Wall-clock fields (*wall_s*) are always ignored.
//
// Exit status: 0 = within tolerance, 1 = differences, 2 = usage/IO/parse
// error.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader that flattens one document into
// path -> scalar-as-text. Numbers keep their source text (so exact
// comparison is byte exact) plus a parsed double for tolerant comparison.
// ---------------------------------------------------------------------------

enum class ValueKind { kNumber, kString, kBool, kNull };

struct FlatValue {
  ValueKind kind = ValueKind::kNull;
  std::string text;    // source text (number) or decoded string
  double number = 0;   // valid when kind == kNumber
};

struct Parser {
  const std::string& s;
  size_t at = 0;
  bool ok = true;
  std::string error;

  explicit Parser(const std::string& str) : s(str) {}

  void Fail(const std::string& why) {
    if (ok) {
      ok = false;
      error = why + " at offset " + std::to_string(at);
    }
  }
  void SkipWs() {
    while (at < s.size() && std::isspace(static_cast<unsigned char>(s[at]))) {
      ++at;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (at < s.size() && s[at] == c) {
      ++at;
      return true;
    }
    return false;
  }
  std::string ParseString() {
    SkipWs();
    std::string out;
    if (at >= s.size() || s[at] != '"') {
      Fail("expected string");
      return out;
    }
    ++at;
    while (at < s.size() && s[at] != '"') {
      char c = s[at++];
      if (c == '\\' && at < s.size()) {
        const char esc = s[at++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Keep \uXXXX escapes verbatim; they only need to compare
            // equal, not decode.
            out += "\\u";
            continue;
          default: c = esc; break;
        }
      }
      out += c;
    }
    if (at >= s.size()) {
      Fail("unterminated string");
    } else {
      ++at;  // closing quote
    }
    return out;
  }

  void ParseValue(const std::string& path,
                  std::map<std::string, FlatValue>& out) {
    SkipWs();
    if (!ok || at >= s.size()) {
      Fail("unexpected end of input");
      return;
    }
    const char c = s[at];
    if (c == '{') {
      ++at;
      if (Consume('}')) return;
      do {
        const std::string key = ParseString();
        if (!ok) return;
        if (!Consume(':')) {
          Fail("expected ':'");
          return;
        }
        ParseValue(path.empty() ? key : path + "." + key, out);
        if (!ok) return;
      } while (Consume(','));
      if (!Consume('}')) Fail("expected '}'");
      return;
    }
    if (c == '[') {
      ++at;
      if (Consume(']')) return;
      size_t index = 0;
      do {
        ParseValue(path + "[" + std::to_string(index++) + "]", out);
        if (!ok) return;
      } while (Consume(','));
      if (!Consume(']')) Fail("expected ']'");
      return;
    }
    if (c == '"') {
      FlatValue v;
      v.kind = ValueKind::kString;
      v.text = ParseString();
      out[path] = std::move(v);
      return;
    }
    if (std::strncmp(s.c_str() + at, "true", 4) == 0) {
      at += 4;
      out[path] = FlatValue{ValueKind::kBool, "true", 1};
      return;
    }
    if (std::strncmp(s.c_str() + at, "false", 5) == 0) {
      at += 5;
      out[path] = FlatValue{ValueKind::kBool, "false", 0};
      return;
    }
    if (std::strncmp(s.c_str() + at, "null", 4) == 0) {
      at += 4;
      out[path] = FlatValue{ValueKind::kNull, "null", 0};
      return;
    }
    // Number.
    const size_t begin = at;
    while (at < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[at])) || s[at] == '-' ||
            s[at] == '+' || s[at] == '.' || s[at] == 'e' || s[at] == 'E')) {
      ++at;
    }
    if (at == begin) {
      Fail("unexpected character");
      return;
    }
    FlatValue v;
    v.kind = ValueKind::kNumber;
    v.text = s.substr(begin, at - begin);
    v.number = std::strtod(v.text.c_str(), nullptr);
    out[path] = std::move(v);
  }
};

// ---------------------------------------------------------------------------
// Tolerance rules
// ---------------------------------------------------------------------------

constexpr double kIgnore = -1;  // sentinel: skip the field entirely

struct ToleranceRule {
  std::string pattern;  // trailing '*' = prefix match
  double rtol = 0;      // kIgnore skips
};

struct Tolerances {
  double default_rtol = 0;
  std::vector<ToleranceRule> rules;

  /// Most-specific (longest-pattern) matching rule, or default_rtol.
  double For(const std::string& path) const {
    size_t best_len = 0;
    double best = default_rtol;
    bool matched = false;
    for (const ToleranceRule& r : rules) {
      bool hit;
      if (!r.pattern.empty() && r.pattern.back() == '*') {
        hit = path.compare(0, r.pattern.size() - 1, r.pattern, 0,
                           r.pattern.size() - 1) == 0;
      } else {
        hit = path == r.pattern;
      }
      if (hit && (!matched || r.pattern.size() >= best_len)) {
        matched = true;
        best_len = r.pattern.size();
        best = r.rtol;
      }
    }
    return best;
  }
};

bool NumbersMatch(double a, double b, double rtol) {
  if (a == b) return true;  // covers both zero and identical values
  if (std::isnan(a) && std::isnan(b)) return true;
  const double mag = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rtol * mag;
}

// ---------------------------------------------------------------------------
// Record loading
// ---------------------------------------------------------------------------

struct Record {
  std::string key;  // bench/cell_label#occurrence
  std::map<std::string, FlatValue> fields;
};

bool LoadRecords(const char* path, std::vector<Record>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::map<std::string, int> occurrences;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Parser p(line);
    Record r;
    p.ParseValue("", r.fields);
    p.SkipWs();
    if (!p.ok || p.at != line.size()) {
      std::fprintf(stderr, "bench_diff: %s:%zu: %s\n", path, lineno,
                   p.ok ? "trailing garbage" : p.error.c_str());
      return false;
    }
    const auto bench = r.fields.find("bench");
    const auto cell = r.fields.find("cell_label");
    std::string id =
        (bench != r.fields.end() ? bench->second.text : "?") + "/" +
        (cell != r.fields.end() ? cell->second.text : "?");
    const int n = occurrences[id]++;
    if (n > 0) {
      // Append in two steps: `"#" + std::to_string(n)` trips GCC 12's
      // -Werror=restrict false positive (PR105651) at -O3.
      id += "#";
      id += std::to_string(n);
    }
    r.key = std::move(id);
    out.push_back(std::move(r));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

struct Reporter {
  uint64_t mismatches = 0;
  uint64_t new_keys = 0;  // candidate-only fields noted under --allow-new-keys
  uint64_t reported = 0;
  uint64_t limit = 20;

  void Report(const std::string& cell, const std::string& path,
              const std::string& a, const std::string& b) {
    ++mismatches;
    Print(cell, path, a, b);
  }

  /// A candidate-only field under --allow-new-keys: visible in the output
  /// but not counted against the exit status.
  void Note(const std::string& cell, const std::string& path,
            const std::string& b) {
    ++new_keys;
    Print(cell, path, "<missing> (new key, allowed)", b);
  }

  void Print(const std::string& cell, const std::string& path,
             const std::string& a, const std::string& b) {
    if (reported < limit) {
      std::fprintf(stderr, "  %s: %s: %s != %s\n", cell.c_str(),
                   path.c_str(), a.c_str(), b.c_str());
      ++reported;
    } else if (reported == limit) {
      std::fprintf(stderr, "  ... further mismatches elided\n");
      ++reported;
    }
  }
};

void CompareRecords(const Record& a, const Record& b, const Tolerances& tol,
                    bool baseline_mode, bool allow_new_keys,
                    Reporter& report) {
  for (const auto& [path, va] : a.fields) {
    const double rtol = tol.For(path);
    if (rtol == kIgnore) continue;
    const auto it = b.fields.find(path);
    if (it == b.fields.end()) {
      report.Report(a.key, path, va.text, "<missing>");
      continue;
    }
    const FlatValue& vb = it->second;
    if (va.kind != vb.kind) {
      report.Report(a.key, path, va.text, vb.text);
      continue;
    }
    const bool match = va.kind == ValueKind::kNumber
                           ? NumbersMatch(va.number, vb.number, rtol)
                           : va.text == vb.text;
    if (!match) report.Report(a.key, path, va.text, vb.text);
  }
  if (baseline_mode) return;  // extra fields in `b` are allowed there
  for (const auto& [path, vb] : b.fields) {
    if (tol.For(path) == kIgnore) continue;
    if (a.fields.find(path) == a.fields.end()) {
      if (allow_new_keys) {
        report.Note(b.key, path, vb.text);
      } else {
        report.Report(b.key, path, "<missing>", vb.text);
      }
    }
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <a.jsonl> <b.jsonl>\n"
               "       %s --baseline <baseline.jsonl> [options] "
               "<current.jsonl>\n"
               "  --rtol <x>        default relative tolerance (default 0)\n"
               "  --tol <key=x>     per-field tolerance ('*' suffix = "
               "prefix; x may be 'ignore')\n"
               "  --max-report <n>  mismatch lines printed (default 20)\n"
               "  --allow-new-keys  fields only in the second file are "
               "notes, not failures\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Tolerances tol;
  // Host wall-clock is the one field that legitimately differs run to run.
  tol.rules.push_back({"elapsed_wall_s", kIgnore});
  tol.rules.push_back({"wall_s", kIgnore});

  const char* baseline_path = nullptr;
  bool allow_new_keys = false;
  Reporter report;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--baseline") {
      if ((baseline_path = next()) == nullptr) return Usage(argv[0]);
    } else if (arg == "--rtol") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      tol.default_rtol = std::strtod(v, nullptr);
    } else if (arg == "--tol") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) return Usage(argv[0]);
      ToleranceRule rule;
      rule.pattern.assign(v, eq);
      rule.rtol = std::strcmp(eq + 1, "ignore") == 0
                      ? kIgnore
                      : std::strtod(eq + 1, nullptr);
      tol.rules.push_back(std::move(rule));
    } else if (arg == "--max-report") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      report.limit = std::strtoull(v, nullptr, 10);
    } else if (arg == "--allow-new-keys") {
      allow_new_keys = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else {
      files.push_back(argv[i]);
    }
  }

  const bool baseline_mode = baseline_path != nullptr;
  const char* a_path;
  const char* b_path;
  if (baseline_mode) {
    if (files.size() != 1) return Usage(argv[0]);
    a_path = baseline_path;  // baseline drives the field set
    b_path = files[0];
  } else {
    if (files.size() != 2) return Usage(argv[0]);
    a_path = files[0];
    b_path = files[1];
  }

  std::vector<Record> a, b;
  if (!LoadRecords(a_path, a) || !LoadRecords(b_path, b)) return 2;

  std::map<std::string, const Record*> b_by_key;
  for (const Record& r : b) b_by_key[r.key] = &r;
  std::map<std::string, const Record*> a_by_key;
  for (const Record& r : a) a_by_key[r.key] = &r;

  for (const Record& ra : a) {
    const auto it = b_by_key.find(ra.key);
    if (it == b_by_key.end()) {
      report.Report(ra.key, "<record>", "present", "<missing>");
      continue;
    }
    CompareRecords(ra, *it->second, tol, baseline_mode, allow_new_keys,
                   report);
  }
  for (const Record& rb : b) {
    if (a_by_key.find(rb.key) == a_by_key.end()) {
      // A brand-new cell is a grid change either way: the baseline no
      // longer describes the bench.
      report.Report(rb.key, "<record>", "<missing>", "present");
    }
  }

  if (report.mismatches > 0) {
    std::fprintf(stderr,
                 "bench_diff: %llu mismatching field(s) between %s and %s "
                 "(rtol=%g)\n",
                 static_cast<unsigned long long>(report.mismatches), a_path,
                 b_path, tol.default_rtol);
    return 1;
  }
  if (report.new_keys > 0) {
    std::printf("bench_diff: %zu record(s) match within tolerance "
                "(%llu new key(s) allowed)\n",
                a.size(), static_cast<unsigned long long>(report.new_keys));
  } else {
    std::printf("bench_diff: %zu record(s) match within tolerance\n",
                a.size());
  }
  return 0;
}
