// Renders the per-transaction response-time breakdowns that profile_spans
// runs embed in bench JSONL (`"breakdown"` sections, DESIGN.md §14) as
// stacked share tables: where each policy's response time actually goes.
//
// Usage: span_report [--csv] [--check] [--by-cell] [--shards]
//                    <bench.jsonl>...
//
//   (default)  one row per policy, phases as percent of total response
//              ticks summed over that policy's cells and txn kinds — the
//              view that answers "did CLS+SB shrink the I/O-wait share
//              relative to PLC?"
//   --by-cell  one row per cell instead (policy/workload resolution)
//   --csv      raw integer ticks, one row per (cell, txn kind), for
//              plotting or jq post-processing
//   --check    additivity audit only: for every (cell, kind) the
//              phase totals must sum to response_ticks EXACTLY (they are
//              integer virtual-time ticks, so there is no tolerance).
//              Exit 1 on any violation, 0 otherwise. Exit 2 when no
//              record carries a breakdown (the run had profile_spans off)
//              so CI cannot green-light an unprofiled file by accident.
//   --shards   per-shard balance view of a sharded run (core/sharding.*):
//              one row per (cell, shard) from the "shardN."-prefixed
//              metrics a sharded MeasurementController registers, plus
//              each cell's cross-shard traffic (shard.* counters and the
//              remote_fetch_fraction gauge). Works on any bench JSONL
//              with embedded metrics; profile_spans is not required.
//              Exit 2 when no record carries per-shard metrics.
//
// The exporter writes one JSON object per line, so this tool line-scans
// with string searches like trace_summary does; the only nested structure
// it touches is the breakdown object itself, which holds flat per-kind
// objects of integer fields.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

/// The ten phase keys, in the additive taxonomy's order. Kept in sync
/// with obs::SpanPhaseName (span_test.cc pins the spelling). Files from
/// before the sharded model simply lack `remote_fetch_wait_ticks`, and
/// pre-cc files lack `lock_wait_ticks`; both read as 0 and keep the
/// additivity audit exact.
constexpr const char* kPhaseKeys[] = {
    "cpu_service",      "cpu_wait",       "io_service",
    "io_wait",          "buffer_fix_wait", "log_force_wait",
    "prefetch_overlap", "dyn_recluster",  "remote_fetch_wait",
    "lock_wait",
};
constexpr int kNumPhases = 10;

/// Column headers for the share tables (percent of response time).
constexpr const char* kPhaseHeads[] = {
    "cpu%", "cpuq%", "io%", "ioq%", "fix%", "log%", "pref%", "dyn%", "rmt%",
    "lck%",
};

struct Totals {
  uint64_t txns = 0;
  uint64_t response_ticks = 0;
  uint64_t phase_ticks[kNumPhases] = {};
};

/// Value of `"key":...` in `text` as raw text (up to `,` or `}`), or empty.
std::string RawValue(const std::string& text, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  size_t end = begin;
  if (begin < text.size() && text[begin] == '"') {
    ++begin;
    end = text.find('"', begin);
    if (end == std::string::npos) return "";
  } else {
    while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
  }
  return text.substr(begin, end - begin);
}

uint64_t UintValue(const std::string& text, const char* key) {
  const std::string raw = RawValue(text, key);
  return raw.empty() ? 0 : std::strtoull(raw.c_str(), nullptr, 10);
}

/// The `"breakdown":{...}` object of one JSONL record, split into
/// (kind, flat-object-text) pairs. Empty when the record has none.
std::vector<std::pair<std::string, std::string>> BreakdownOf(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> kinds;
  const char* needle = "\"breakdown\":{";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return kinds;
  size_t i = at + std::strlen(needle);
  // The per-kind values are flat objects of integers: one brace level,
  // no strings containing braces, so a linear scan suffices.
  while (i < line.size() && line[i] != '}') {
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] != '"') break;
    const size_t kend = line.find('"', i + 1);
    if (kend == std::string::npos) break;
    const std::string kind = line.substr(i + 1, kend - i - 1);
    const size_t vbegin = line.find('{', kend);
    if (vbegin == std::string::npos) break;
    const size_t vend = line.find('}', vbegin);
    if (vend == std::string::npos) break;
    kinds.emplace_back(kind, line.substr(vbegin, vend - vbegin + 1));
    i = vend + 1;
  }
  return kinds;
}

void Fold(Totals& into, const Totals& t) {
  into.txns += t.txns;
  into.response_ticks += t.response_ticks;
  for (int p = 0; p < kNumPhases; ++p) into.phase_ticks[p] += t.phase_ticks[p];
}

double DoubleValue(const std::string& text, const char* key) {
  const std::string raw = RawValue(text, key);
  return raw.empty() ? 0.0 : std::strtod(raw.c_str(), nullptr);
}

/// Renders the per-shard balance view of every record in `paths` that
/// carries "shardN."-prefixed metrics. Returns the number of sharded
/// records found.
uint64_t PrintShardTables(const std::vector<const char*>& paths) {
  uint64_t sharded_records = 0;
  for (const char* path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "span_report: cannot open %s\n", path);
      continue;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"shard0.buffer.hits\"") == std::string::npos) continue;
      if (sharded_records == 0) {
        std::printf("%-42s %5s %10s %10s %10s %6s %6s %6s\n", "cell",
                    "shard", "buf_hits", "buf_miss", "data_read", "disk%",
                    "cpu%", "nic%");
      }
      ++sharded_records;
      const std::string cell = RawValue(line, "cell_label");
      for (int s = 0;; ++s) {
        const std::string prefix = "shard" + std::to_string(s) + ".";
        if (line.find("\"" + prefix + "buffer.hits\"") == std::string::npos) {
          break;
        }
        const auto key = [&prefix](const char* name) {
          return prefix + name;
        };
        std::printf(
            "%-42s %5d %10llu %10llu %10llu %6.2f %6.2f %6.2f\n",
            s == 0 ? cell.c_str() : "", s,
            static_cast<unsigned long long>(
                UintValue(line, key("buffer.hits").c_str())),
            static_cast<unsigned long long>(
                UintValue(line, key("buffer.misses").c_str())),
            static_cast<unsigned long long>(
                UintValue(line, key("io.data_read").c_str())),
            100.0 * DoubleValue(line, key("io.mean_disk_utilization").c_str()),
            100.0 * DoubleValue(line, key("cpu.utilization").c_str()),
            100.0 * DoubleValue(line, key("nic.utilization").c_str()));
      }
      std::printf("%-42s cross-shard: local=%llu remote=%llu hops=%llu "
                  "remote_writes=%llu remote_fraction=%.3f\n",
                  "",
                  static_cast<unsigned long long>(
                      UintValue(line, "shard.local_fetches")),
                  static_cast<unsigned long long>(
                      UintValue(line, "shard.remote_fetches")),
                  static_cast<unsigned long long>(
                      UintValue(line, "shard.hops")),
                  static_cast<unsigned long long>(
                      UintValue(line, "shard.remote_writes")),
                  DoubleValue(line, "shard.remote_fetch_fraction"));
    }
  }
  return sharded_records;
}

void PrintShareTable(const char* row_head,
                     const std::map<std::string, Totals>& rows) {
  std::printf("%-32s %8s %10s", row_head, "txns", "resp_s");
  for (const char* head : kPhaseHeads) std::printf(" %6s", head);
  std::printf("\n");
  for (const auto& [label, t] : rows) {
    std::printf("%-32s %8llu %10.3f", label.c_str(),
                static_cast<unsigned long long>(t.txns),
                static_cast<double>(t.response_ticks) * 1e-9);
    for (int p = 0; p < kNumPhases; ++p) {
      const double share =
          t.response_ticks == 0
              ? 0.0
              : 100.0 * static_cast<double>(t.phase_ticks[p]) /
                    static_cast<double>(t.response_ticks);
      std::printf(" %6.1f", share);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool check = false;
  bool by_cell = false;
  bool shards = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--by-cell") == 0) {
      by_cell = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: span_report [--csv] [--check] [--by-cell] "
                   "[--shards] <bench.jsonl>...\n");
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: span_report [--csv] [--check] [--by-cell] "
                 "[--shards] <bench.jsonl>...\n");
    return 2;
  }

  if (shards) {
    if (PrintShardTables(paths) != 0) return 0;
    std::fprintf(stderr,
                 "span_report: no \"shardN.\" metrics found — was the run "
                 "sharded (config \"shards\" > 1) with metrics on?\n");
    return 2;
  }

  std::map<std::string, Totals> by_policy;
  std::map<std::string, Totals> by_cell_rows;
  uint64_t records_with_breakdown = 0;
  uint64_t kind_rows = 0;
  uint64_t violations = 0;

  if (csv) {
    std::printf("cell,kind,txns,response_ticks");
    for (const char* key : kPhaseKeys) std::printf(",%s_ticks", key);
    std::printf("\n");
  }

  for (const char* path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "span_report: cannot open %s\n", path);
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      const auto kinds = BreakdownOf(line);
      if (kinds.empty()) continue;
      ++records_with_breakdown;
      const std::string cell = RawValue(line, "cell_label");
      const std::string policy = RawValue(line, "policy");
      for (const auto& [kind, obj] : kinds) {
        Totals t;
        t.txns = UintValue(obj, "txns");
        t.response_ticks = UintValue(obj, "response_ticks");
        uint64_t sum = 0;
        for (int p = 0; p < kNumPhases; ++p) {
          const std::string key = std::string(kPhaseKeys[p]) + "_ticks";
          t.phase_ticks[p] = UintValue(obj, key.c_str());
          sum += t.phase_ticks[p];
        }
        ++kind_rows;
        if (sum != t.response_ticks) {
          ++violations;
          std::fprintf(stderr,
                       "span_report: ADDITIVITY VIOLATION %s/%s: phase sum "
                       "%llu != response_ticks %llu\n",
                       cell.c_str(), kind.c_str(),
                       static_cast<unsigned long long>(sum),
                       static_cast<unsigned long long>(t.response_ticks));
        }
        if (csv) {
          std::printf("%s,%s,%llu,%llu", cell.c_str(), kind.c_str(),
                      static_cast<unsigned long long>(t.txns),
                      static_cast<unsigned long long>(t.response_ticks));
          for (int p = 0; p < kNumPhases; ++p) {
            std::printf(",%llu",
                        static_cast<unsigned long long>(t.phase_ticks[p]));
          }
          std::printf("\n");
        }
        Fold(by_policy[policy], t);
        Fold(by_cell_rows[cell], t);
      }
    }
  }

  if (records_with_breakdown == 0) {
    std::fprintf(stderr,
                 "span_report: no \"breakdown\" sections found — was the run "
                 "missing profile_spans / SEMCLUST_SPANS=1?\n");
    return 2;
  }
  if (check) {
    std::printf("span_report: %llu (cell, kind) rows checked, %llu "
                "additivity violation(s)\n",
                static_cast<unsigned long long>(kind_rows),
                static_cast<unsigned long long>(violations));
    return violations == 0 ? 0 : 1;
  }
  if (!csv) {
    PrintShareTable(by_cell ? "cell" : "policy",
                    by_cell ? by_cell_rows : by_policy);
  }
  return violations == 0 ? 0 : 1;
}
