// Per-subsystem rollups of a semclust Chrome trace file.
//
// Usage: trace_summary <trace.json>
//
// The exporter (src/obs/trace_sink.cc) writes one JSON object per line, so
// this tool line-scans with string searches instead of a JSON parser: for
// each instant event it reads the pid (cell), cat (subsystem), and name,
// and for metadata records it picks up cell labels and ring-drop counts.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

namespace {

/// Value of `"key":...` in `line` as raw text (up to `,` or `}`), or empty.
std::string RawValue(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string::npos) return "";
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

long long IntValue(const std::string& line, const char* key) {
  const std::string raw = RawValue(line, key);
  return raw.empty() ? 0 : std::strtoll(raw.c_str(), nullptr, 10);
}

double DoubleValue(const std::string& line, const char* key) {
  const std::string raw = RawValue(line, key);
  return raw.empty() ? 0.0 : std::strtod(raw.c_str(), nullptr);
}

struct SubsystemRollup {
  uint64_t events = 0;
  std::map<std::string, uint64_t> by_name;
};

struct CellRollup {
  std::string label;
  uint64_t events = 0;
  uint64_t dropped = 0;
  double first_ts_us = 0;
  double last_ts_us = 0;
  std::map<std::string, SubsystemRollup> subsystems;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_summary: cannot open %s\n", argv[1]);
    return 1;
  }

  std::map<long long, CellRollup> cells;
  std::string line;
  uint64_t parsed = 0;
  while (std::getline(in, line)) {
    const std::string ph = RawValue(line, "ph");
    if (ph == "M") {
      const std::string name = RawValue(line, "name");
      CellRollup& cell = cells[IntValue(line, "pid")];
      if (name == "process_name") {
        // args is the innermost object, so its "name" is the second one on
        // the line; take the last match.
        const size_t args_at = line.find("\"args\":");
        if (args_at != std::string::npos) {
          cell.label = RawValue(line.substr(args_at), "name");
        }
      } else if (name == "semclust_ring_dropped") {
        cell.dropped += static_cast<uint64_t>(IntValue(line, "dropped"));
      }
      continue;
    }
    if (ph != "i") continue;
    CellRollup& cell = cells[IntValue(line, "pid")];
    const double ts = DoubleValue(line, "ts");
    if (cell.events == 0 || ts < cell.first_ts_us) cell.first_ts_us = ts;
    if (ts > cell.last_ts_us) cell.last_ts_us = ts;
    ++cell.events;
    ++parsed;
    SubsystemRollup& sub = cell.subsystems[RawValue(line, "cat")];
    ++sub.events;
    ++sub.by_name[RawValue(line, "name")];
  }

  if (cells.empty()) {
    std::printf("no trace events in %s\n", argv[1]);
    return 0;
  }

  uint64_t total_events = 0;
  uint64_t total_reads = 0;
  uint64_t total_writes = 0;
  uint64_t total_dropped = 0;
  for (const auto& [pid, cell] : cells) {
    std::printf("cell %lld (%s): %llu events retained",
                pid, cell.label.empty() ? "?" : cell.label.c_str(),
                static_cast<unsigned long long>(cell.events));
    if (cell.dropped > 0) {
      std::printf(", %llu dropped by the ring",
                  static_cast<unsigned long long>(cell.dropped));
    }
    std::printf(", sim time %.3f..%.3f s\n", cell.first_ts_us / 1e6,
                cell.last_ts_us / 1e6);
    for (const auto& [subsystem, sub] : cell.subsystems) {
      std::printf("  %-8s %8llu events:", subsystem.c_str(),
                  static_cast<unsigned long long>(sub.events));
      for (const auto& [name, count] : sub.by_name) {
        std::printf(" %s=%llu", name.c_str(),
                    static_cast<unsigned long long>(count));
      }
      std::printf("\n");
    }
    total_events += cell.events;
    total_dropped += cell.dropped;
    const auto io = cell.subsystems.find("io");
    if (io != cell.subsystems.end()) {
      for (const auto& [name, count] : io->second.by_name) {
        if (name == "page-read") total_reads += count;
        if (name == "page-write") total_writes += count;
      }
    }
  }
  std::printf("total: %zu cell(s), %llu events (%llu dropped), "
              "io %llu page reads + %llu page writes\n",
              cells.size(), static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_dropped),
              static_cast<unsigned long long>(total_reads),
              static_cast<unsigned long long>(total_writes));
  return parsed == 0 ? 1 : 0;
}
