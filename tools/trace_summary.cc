// Per-subsystem rollups of a semclust Chrome trace file.
//
// Usage: trace_summary [--csv] <trace.json>
//
// The exporter (src/obs/trace_sink.cc) writes one JSON object per line, so
// this tool line-scans with string searches instead of a JSON parser: for
// each instant event it reads the pid (cell), cat (subsystem), and name,
// and for metadata records it picks up cell labels and ring-drop counts.
//
// Beyond the per-subsystem event counts, the summary reports each
// subsystem's simulated-time span (first..last event) and an event-rate
// profile: the cell's span split into ten equal simulated-time windows
// with events/s per window, which makes warmup ramps and recluster storms
// visible without opening the trace in a viewer. `--csv` emits the same
// profile as cell,label,subsystem,window rows for plotting.
//
// Two event shapes are summarised: instant events (ph "i", the common
// case) and complete events (ph "X", the span-profiler exemplar nodes,
// bucketed by their begin timestamp). The dynamic-reclustering events
// (dyn-trigger / dyn-reorg) are emitted under the "cluster" category but
// are reported as their own "dyn" row here so reorganisation activity is
// separable from static clustering at a glance. The concurrency-control
// events (lock-grant / lock-wait / lock-timeout / latch-wait / txn-abort,
// emitted under "core"/"buffer") likewise report as their own "cc" row,
// with grant/wait/abort totals in the summary line.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

/// Number of equal simulated-time windows in the rate profile.
constexpr int kRateWindows = 10;

/// Value of `"key":...` in `line` as raw text (up to `,` or `}`), or empty.
std::string RawValue(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string::npos) return "";
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

long long IntValue(const std::string& line, const char* key) {
  const std::string raw = RawValue(line, key);
  return raw.empty() ? 0 : std::strtoll(raw.c_str(), nullptr, 10);
}

double DoubleValue(const std::string& line, const char* key) {
  const std::string raw = RawValue(line, key);
  return raw.empty() ? 0.0 : std::strtod(raw.c_str(), nullptr);
}

struct SubsystemRollup {
  uint64_t events = 0;
  double first_ts_us = 0;
  double last_ts_us = 0;
  std::map<std::string, uint64_t> by_name;
  /// Event timestamps, retained for the windowed rate profile. Bounded by
  /// the exporter's ring capacity, so keeping them is cheap.
  std::vector<double> ts_us;
};

struct CellRollup {
  std::string label;
  uint64_t events = 0;
  uint64_t dropped = 0;
  double first_ts_us = 0;
  double last_ts_us = 0;
  std::map<std::string, SubsystemRollup> subsystems;
};

/// Events of `sub` bucketed into kRateWindows equal windows over the
/// cell's [first_us, last_us] span.
std::vector<uint64_t> WindowCounts(const SubsystemRollup& sub,
                                   double first_us, double last_us) {
  std::vector<uint64_t> counts(kRateWindows, 0);
  const double span = last_us - first_us;
  for (double ts : sub.ts_us) {
    int w = span <= 0 ? 0
                      : static_cast<int>((ts - first_us) / span * kRateWindows);
    if (w < 0) w = 0;
    if (w >= kRateWindows) w = kRateWindows - 1;
    ++counts[static_cast<size_t>(w)];
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s [--csv] <trace.json>\n", argv[0]);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_summary: cannot open %s\n", path);
    return 1;
  }

  std::map<long long, CellRollup> cells;
  std::string line;
  uint64_t parsed = 0;
  while (std::getline(in, line)) {
    const std::string ph = RawValue(line, "ph");
    if (ph == "M") {
      const std::string name = RawValue(line, "name");
      CellRollup& cell = cells[IntValue(line, "pid")];
      if (name == "process_name") {
        // args is the innermost object, so its "name" is the second one on
        // the line; take the last match.
        const size_t args_at = line.find("\"args\":");
        if (args_at != std::string::npos) {
          cell.label = RawValue(line.substr(args_at), "name");
        }
      } else if (name == "semclust_ring_dropped") {
        cell.dropped += static_cast<uint64_t>(IntValue(line, "dropped"));
      }
      continue;
    }
    if (ph != "i" && ph != "X") continue;
    CellRollup& cell = cells[IntValue(line, "pid")];
    const double ts = DoubleValue(line, "ts");
    if (cell.events == 0 || ts < cell.first_ts_us) cell.first_ts_us = ts;
    if (ts > cell.last_ts_us) cell.last_ts_us = ts;
    ++cell.events;
    ++parsed;
    const std::string name = RawValue(line, "name");
    // Dynamic-reclustering events ride on the "cluster" category,
    // cross-shard fetches on "core", and the concurrency-control events
    // on "core"/"buffer"; classify each as its own subsystem row in the
    // table.
    std::string cat = RawValue(line, "cat");
    if (name == "dyn-trigger" || name == "dyn-reorg") cat = "dyn";
    if (name == "remote-fetch") cat = "shard";
    if (name == "lock-grant" || name == "lock-wait" ||
        name == "lock-timeout" || name == "latch-wait" ||
        name == "txn-abort") {
      cat = "cc";
    }
    SubsystemRollup& sub = cell.subsystems[cat];
    if (sub.events == 0 || ts < sub.first_ts_us) sub.first_ts_us = ts;
    if (ts > sub.last_ts_us) sub.last_ts_us = ts;
    ++sub.events;
    ++sub.by_name[name];
    sub.ts_us.push_back(ts);
  }

  if (cells.empty()) {
    std::printf("no trace events in %s\n", path);
    return 0;
  }

  if (csv) {
    std::printf(
        "cell,label,subsystem,window,window_start_s,window_end_s,events,"
        "events_per_s\n");
    for (const auto& [pid, cell] : cells) {
      const double span_us = cell.last_ts_us - cell.first_ts_us;
      const double window_s = span_us / kRateWindows / 1e6;
      for (const auto& [subsystem, sub] : cell.subsystems) {
        const auto counts = WindowCounts(sub, cell.first_ts_us,
                                         cell.last_ts_us);
        for (int w = 0; w < kRateWindows; ++w) {
          const double start_s = cell.first_ts_us / 1e6 + w * window_s;
          const double rate = window_s > 0
                                  ? counts[static_cast<size_t>(w)] / window_s
                                  : 0;
          std::printf("%lld,%s,%s,%d,%.6f,%.6f,%llu,%.3f\n", pid,
                      cell.label.c_str(), subsystem.c_str(), w, start_s,
                      start_s + window_s,
                      static_cast<unsigned long long>(
                          counts[static_cast<size_t>(w)]),
                      rate);
        }
      }
    }
    return 0;
  }

  uint64_t total_events = 0;
  uint64_t total_reads = 0;
  uint64_t total_writes = 0;
  uint64_t total_dropped = 0;
  uint64_t total_dyn_triggers = 0;
  uint64_t total_dyn_reorgs = 0;
  uint64_t total_remote_fetches = 0;
  uint64_t total_lock_grants = 0;
  uint64_t total_lock_waits = 0;
  uint64_t total_txn_aborts = 0;
  for (const auto& [pid, cell] : cells) {
    std::printf("cell %lld (%s): %llu events retained",
                pid, cell.label.empty() ? "?" : cell.label.c_str(),
                static_cast<unsigned long long>(cell.events));
    if (cell.dropped > 0) {
      std::printf(", %llu dropped by the ring",
                  static_cast<unsigned long long>(cell.dropped));
    }
    std::printf(", sim time %.3f..%.3f s\n", cell.first_ts_us / 1e6,
                cell.last_ts_us / 1e6);
    const double span_us = cell.last_ts_us - cell.first_ts_us;
    const double window_s = span_us / kRateWindows / 1e6;
    for (const auto& [subsystem, sub] : cell.subsystems) {
      std::printf("  %-8s %8llu events, span %.3f..%.3f s:",
                  subsystem.c_str(),
                  static_cast<unsigned long long>(sub.events),
                  sub.first_ts_us / 1e6, sub.last_ts_us / 1e6);
      for (const auto& [name, count] : sub.by_name) {
        std::printf(" %s=%llu", name.c_str(),
                    static_cast<unsigned long long>(count));
      }
      std::printf("\n");
      if (window_s > 0) {
        const auto counts = WindowCounts(sub, cell.first_ts_us,
                                         cell.last_ts_us);
        std::printf("           rate/s over %d windows:", kRateWindows);
        for (uint64_t c : counts) std::printf(" %.0f", c / window_s);
        std::printf("\n");
      }
    }
    total_events += cell.events;
    total_dropped += cell.dropped;
    const auto io = cell.subsystems.find("io");
    if (io != cell.subsystems.end()) {
      for (const auto& [name, count] : io->second.by_name) {
        if (name == "page-read") total_reads += count;
        if (name == "page-write") total_writes += count;
      }
    }
    const auto dyn = cell.subsystems.find("dyn");
    if (dyn != cell.subsystems.end()) {
      for (const auto& [name, count] : dyn->second.by_name) {
        if (name == "dyn-trigger") total_dyn_triggers += count;
        if (name == "dyn-reorg") total_dyn_reorgs += count;
      }
    }
    const auto shard = cell.subsystems.find("shard");
    if (shard != cell.subsystems.end()) {
      for (const auto& [name, count] : shard->second.by_name) {
        if (name == "remote-fetch") total_remote_fetches += count;
      }
    }
    const auto cc = cell.subsystems.find("cc");
    if (cc != cell.subsystems.end()) {
      for (const auto& [name, count] : cc->second.by_name) {
        if (name == "lock-grant") total_lock_grants += count;
        if (name == "lock-wait" || name == "latch-wait") {
          total_lock_waits += count;
        }
        if (name == "txn-abort") total_txn_aborts += count;
      }
    }
  }
  std::printf("total: %zu cell(s), %llu events (%llu dropped), "
              "io %llu page reads + %llu page writes, "
              "dyn %llu triggers + %llu reorgs, "
              "shard %llu remote fetches, "
              "cc %llu grants + %llu waits + %llu aborts\n",
              cells.size(), static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_dropped),
              static_cast<unsigned long long>(total_reads),
              static_cast<unsigned long long>(total_writes),
              static_cast<unsigned long long>(total_dyn_triggers),
              static_cast<unsigned long long>(total_dyn_reorgs),
              static_cast<unsigned long long>(total_remote_fetches),
              static_cast<unsigned long long>(total_lock_grants),
              static_cast<unsigned long long>(total_lock_waits),
              static_cast<unsigned long long>(total_txn_aborts));
  return parsed == 0 ? 1 : 0;
}
