// Compares clustering-policy rankings between two bench JSONL files —
// typically an OCT (engineering-database) bench and the OCB grid — to
// answer the transfer question: does the policy ordering the paper
// derives on the CAD workload survive on a generic object graph?
//
// Usage:
//   ocb_compare [--json PATH] <a.jsonl> <b.jsonl>
//
// Each file is a SEMCLUST_BENCH_JSON output: one JSON record per cell
// with "policy" and "mean_response_s" fields. Records are grouped by
// policy and averaged across workload cells; policies are ranked by that
// mean (rank 1 = fastest). The report prints the two rankings side by
// side for the policies the files share, plus Spearman's rank
// correlation over the shared set.
//
// --json PATH additionally writes a machine-readable artifact: each
// file's full ranking (every policy, including ones the other file
// lacks), the shared-set rank pairs, and the Spearman rho — the shape
// scripts/ci.sh archives next to the determinism gates.
//
// Exit status: 0 on success (any correlation), 1 if the files share
// fewer than two policies, 2 on IO/parse errors.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/table_printer.h"

namespace {

struct PolicyStat {
  double sum = 0;
  int cells = 0;
  double Mean() const { return cells == 0 ? 0 : sum / cells; }
};

struct FileSummary {
  std::string bench;  // "bench" field of the first record
  /// policy name -> mean response across that policy's cells.
  std::map<std::string, PolicyStat> policies;
};

bool LoadSummary(const std::string& path, FileSummary& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ocb_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto doc = oodb::JsonValue::Parse(line);
    if (!doc.ok()) {
      std::fprintf(stderr, "ocb_compare: %s:%d: %s\n", path.c_str(),
                   line_no, doc.status().ToString().c_str());
      return false;
    }
    const oodb::JsonValue* policy = doc->Find("policy");
    const oodb::JsonValue* response = doc->Find("mean_response_s");
    if (policy == nullptr || !policy->is_string() || response == nullptr ||
        !response->is_number()) {
      std::fprintf(stderr,
                   "ocb_compare: %s:%d: record lacks string \"policy\" / "
                   "numeric \"mean_response_s\"\n",
                   path.c_str(), line_no);
      return false;
    }
    if (const oodb::JsonValue* bench = doc->Find("bench");
        out.bench.empty() && bench != nullptr && bench->is_string()) {
      out.bench = bench->string_value();
    }
    PolicyStat& stat = out.policies[policy->string_value()];
    stat.sum += response->number_value();
    stat.cells += 1;
  }
  if (out.policies.empty()) {
    std::fprintf(stderr, "ocb_compare: %s holds no records\n", path.c_str());
    return false;
  }
  return true;
}

/// Rank of each policy by ascending mean response (1 = fastest), over the
/// given subset.
std::map<std::string, int> Ranks(const FileSummary& summary,
                                 const std::vector<std::string>& subset) {
  std::vector<std::string> order = subset;
  std::sort(order.begin(), order.end(),
            [&](const std::string& a, const std::string& b) {
              return summary.policies.at(a).Mean() <
                     summary.policies.at(b).Mean();
            });
  std::map<std::string, int> ranks;
  for (size_t i = 0; i < order.size(); ++i) {
    ranks[order[i]] = static_cast<int>(i) + 1;
  }
  return ranks;
}

/// One file's half of the JSON artifact: every policy it ranked (the full
/// set, not just the shared one), rank 1 = fastest mean response.
std::string FileJson(const std::string& path, const std::string& label,
                     const FileSummary& summary) {
  std::vector<std::string> all;
  for (const auto& [policy, stat] : summary.policies) all.push_back(policy);
  const auto ranks = Ranks(summary, all);
  std::vector<std::string> order = all;
  std::sort(order.begin(), order.end(),
            [&](const std::string& x, const std::string& y) {
              return ranks.at(x) < ranks.at(y);
            });
  oodb::JsonArrayWriter ranking;
  for (const auto& policy : order) {
    const PolicyStat& stat = summary.policies.at(policy);
    oodb::JsonObjectWriter row;
    row.Add("policy", policy)
        .Add("rank", ranks.at(policy))
        .Add("mean_response_s", stat.Mean())
        .Add("cells", stat.cells);
    ranking.AddRaw(row.str());
  }
  oodb::JsonObjectWriter out;
  out.Add("path", path).Add("label", label).AddRaw("ranking", ranking.str());
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ocb_compare: --json needs a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: ocb_compare [--json PATH] <a.jsonl> <b.jsonl>\n");
    return 2;
  }
  FileSummary a, b;
  if (!LoadSummary(files[0], a) || !LoadSummary(files[1], b)) return 2;

  std::vector<std::string> shared;
  for (const auto& [policy, stat] : a.policies) {
    if (b.policies.count(policy) != 0) shared.push_back(policy);
  }
  if (shared.size() < 2) {
    std::fprintf(stderr,
                 "ocb_compare: files share %zu polic%s; need at least 2 "
                 "to compare rankings\n",
                 shared.size(), shared.size() == 1 ? "y" : "ies");
    return 1;
  }

  const std::string label_a = a.bench.empty() ? files[0] : a.bench;
  const std::string label_b = b.bench.empty() ? files[1] : b.bench;
  const auto ranks_a = Ranks(a, shared);
  const auto ranks_b = Ranks(b, shared);

  std::printf("policy ranking: %s vs %s (%zu shared policies; rank 1 = "
              "fastest mean response)\n",
              label_a.c_str(), label_b.c_str(), shared.size());

  // Rows in A's ranking order, so agreement reads as a sorted second
  // rank column.
  std::vector<std::string> rows = shared;
  std::sort(rows.begin(), rows.end(),
            [&](const std::string& x, const std::string& y) {
              return ranks_a.at(x) < ranks_a.at(y);
            });
  oodb::TablePrinter table({"policy", label_a + " mean", "rank",
                            label_b + " mean", "rank", "shift"});
  for (const auto& policy : rows) {
    const int delta = ranks_b.at(policy) - ranks_a.at(policy);
    std::string shift = delta == 0 ? "=" : (delta > 0 ? "+" : "") +
                                               std::to_string(delta);
    table.AddRow({policy,
                  oodb::FormatDouble(a.policies.at(policy).Mean() * 1000.0,
                                     1) + " ms",
                  std::to_string(ranks_a.at(policy)),
                  oodb::FormatDouble(b.policies.at(policy).Mean() * 1000.0,
                                     1) + " ms",
                  std::to_string(ranks_b.at(policy)), shift});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  // Spearman's rank correlation: 1 = identical ordering, -1 = inverted.
  // Ranks are distinct integers 1..n, so the closed form applies.
  double d2 = 0;
  for (const auto& policy : shared) {
    const double d = ranks_a.at(policy) - ranks_b.at(policy);
    d2 += d * d;
  }
  const double n = static_cast<double>(shared.size());
  const double rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  const char* verdict = rho >= 0.9   ? "rankings agree"
                        : rho >= 0.5 ? "rankings broadly agree"
                        : rho >= 0.0 ? "rankings diverge"
                                     : "rankings inverted";
  std::printf("\nSpearman rank correlation: %.3f (%s)\n", rho, verdict);

  if (!json_path.empty()) {
    oodb::JsonArrayWriter shared_rows;
    for (const auto& policy : rows) {
      oodb::JsonObjectWriter row;
      row.Add("policy", policy)
          .Add("rank_a", ranks_a.at(policy))
          .Add("rank_b", ranks_b.at(policy))
          .Add("shift", ranks_b.at(policy) - ranks_a.at(policy));
      shared_rows.AddRaw(row.str());
    }
    oodb::JsonObjectWriter doc;
    doc.AddRaw("a", FileJson(files[0], label_a, a))
        .AddRaw("b", FileJson(files[1], label_b, b))
        .AddRaw("shared", shared_rows.str())
        .Add("spearman_rho", rho)
        .Add("verdict", verdict);
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "ocb_compare: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << doc.str() << "\n";
  }
  return 0;
}
