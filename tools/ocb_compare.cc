// Compares clustering-policy rankings between two bench JSONL files —
// typically an OCT (engineering-database) bench and the OCB grid — to
// answer the transfer question: does the policy ordering the paper
// derives on the CAD workload survive on a generic object graph?
//
// Usage:
//   ocb_compare <a.jsonl> <b.jsonl>
//
// Each file is a SEMCLUST_BENCH_JSON output: one JSON record per cell
// with "policy" and "mean_response_s" fields. Records are grouped by
// policy and averaged across workload cells; policies are ranked by that
// mean (rank 1 = fastest). The report prints the two rankings side by
// side for the policies the files share, plus Spearman's rank
// correlation over the shared set.
//
// Exit status: 0 on success (any correlation), 1 if the files share
// fewer than two policies, 2 on IO/parse errors.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_reader.h"
#include "util/table_printer.h"

namespace {

struct PolicyStat {
  double sum = 0;
  int cells = 0;
  double Mean() const { return cells == 0 ? 0 : sum / cells; }
};

struct FileSummary {
  std::string bench;  // "bench" field of the first record
  /// policy name -> mean response across that policy's cells.
  std::map<std::string, PolicyStat> policies;
};

bool LoadSummary(const std::string& path, FileSummary& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ocb_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto doc = oodb::JsonValue::Parse(line);
    if (!doc.ok()) {
      std::fprintf(stderr, "ocb_compare: %s:%d: %s\n", path.c_str(),
                   line_no, doc.status().ToString().c_str());
      return false;
    }
    const oodb::JsonValue* policy = doc->Find("policy");
    const oodb::JsonValue* response = doc->Find("mean_response_s");
    if (policy == nullptr || !policy->is_string() || response == nullptr ||
        !response->is_number()) {
      std::fprintf(stderr,
                   "ocb_compare: %s:%d: record lacks string \"policy\" / "
                   "numeric \"mean_response_s\"\n",
                   path.c_str(), line_no);
      return false;
    }
    if (const oodb::JsonValue* bench = doc->Find("bench");
        out.bench.empty() && bench != nullptr && bench->is_string()) {
      out.bench = bench->string_value();
    }
    PolicyStat& stat = out.policies[policy->string_value()];
    stat.sum += response->number_value();
    stat.cells += 1;
  }
  if (out.policies.empty()) {
    std::fprintf(stderr, "ocb_compare: %s holds no records\n", path.c_str());
    return false;
  }
  return true;
}

/// Rank of each policy by ascending mean response (1 = fastest), over the
/// given subset.
std::map<std::string, int> Ranks(const FileSummary& summary,
                                 const std::vector<std::string>& subset) {
  std::vector<std::string> order = subset;
  std::sort(order.begin(), order.end(),
            [&](const std::string& a, const std::string& b) {
              return summary.policies.at(a).Mean() <
                     summary.policies.at(b).Mean();
            });
  std::map<std::string, int> ranks;
  for (size_t i = 0; i < order.size(); ++i) {
    ranks[order[i]] = static_cast<int>(i) + 1;
  }
  return ranks;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: ocb_compare <a.jsonl> <b.jsonl>\n");
    return 2;
  }
  FileSummary a, b;
  if (!LoadSummary(argv[1], a) || !LoadSummary(argv[2], b)) return 2;

  std::vector<std::string> shared;
  for (const auto& [policy, stat] : a.policies) {
    if (b.policies.count(policy) != 0) shared.push_back(policy);
  }
  if (shared.size() < 2) {
    std::fprintf(stderr,
                 "ocb_compare: files share %zu polic%s; need at least 2 "
                 "to compare rankings\n",
                 shared.size(), shared.size() == 1 ? "y" : "ies");
    return 1;
  }

  const std::string label_a = a.bench.empty() ? argv[1] : a.bench;
  const std::string label_b = b.bench.empty() ? argv[2] : b.bench;
  const auto ranks_a = Ranks(a, shared);
  const auto ranks_b = Ranks(b, shared);

  std::printf("policy ranking: %s vs %s (%zu shared policies; rank 1 = "
              "fastest mean response)\n",
              label_a.c_str(), label_b.c_str(), shared.size());

  // Rows in A's ranking order, so agreement reads as a sorted second
  // rank column.
  std::vector<std::string> rows = shared;
  std::sort(rows.begin(), rows.end(),
            [&](const std::string& x, const std::string& y) {
              return ranks_a.at(x) < ranks_a.at(y);
            });
  oodb::TablePrinter table({"policy", label_a + " mean", "rank",
                            label_b + " mean", "rank", "shift"});
  for (const auto& policy : rows) {
    const int delta = ranks_b.at(policy) - ranks_a.at(policy);
    std::string shift = delta == 0 ? "=" : (delta > 0 ? "+" : "") +
                                               std::to_string(delta);
    table.AddRow({policy,
                  oodb::FormatDouble(a.policies.at(policy).Mean() * 1000.0,
                                     1) + " ms",
                  std::to_string(ranks_a.at(policy)),
                  oodb::FormatDouble(b.policies.at(policy).Mean() * 1000.0,
                                     1) + " ms",
                  std::to_string(ranks_b.at(policy)), shift});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  // Spearman's rank correlation: 1 = identical ordering, -1 = inverted.
  // Ranks are distinct integers 1..n, so the closed form applies.
  double d2 = 0;
  for (const auto& policy : shared) {
    const double d = ranks_a.at(policy) - ranks_b.at(policy);
    d2 += d * d;
  }
  const double n = static_cast<double>(shared.size());
  const double rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  std::printf("\nSpearman rank correlation: %.3f (%s)\n", rho,
              rho >= 0.9   ? "rankings agree"
              : rho >= 0.5 ? "rankings broadly agree"
              : rho >= 0.0 ? "rankings diverge"
                           : "rankings inverted");
  return 0;
}
