// Runs declarative `.scenario.json` experiment files (core/scenario.h)
// through the exec::ExperimentRunner worker pool and emits the standard
// BenchReport JSONL — the same records the hand-written bench binaries
// produce, so `bench_diff` can gate a scenario run against a committed
// baseline byte-for-byte.
//
// Usage:
//   semclust_run [options] <scenario.json>...
//     --jobs N     worker threads (same as SEMCLUST_BENCH_JOBS=N)
//     --json PATH  append one JSONL record per cell to PATH
//                  (same as SEMCLUST_BENCH_JSON=PATH)
//     --seed N     override the scenario's base seed
//                  (same as SEMCLUST_BENCH_SEED=N)
//     --metrics-out PATH
//                  write the final merged MetricsSnapshot of each
//                  scenario as a standalone JSON file (truncating;
//                  deterministic at any job count)
//     --dry-run    expand and list the cells without simulating
//     --policies   list the canonical policy names per axis and exit
//     --list-policies
//                  list every policy axis with canonical names AND the
//                  registered aliases each level accepts, and exit
//
// The SEMCLUST_BENCH_SEED and SEMCLUST_BENCH_SERIES_S environment knobs
// are honoured exactly as the bench binaries honour them, and
// SEMCLUST_SPANS=1 turns on the per-transaction span profiler
// (config.profile_spans) without editing the committed scenario. Exit
// status: 0 on success, 2 on usage/parse errors.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/bench_report.h"
#include "core/policy_registry.h"
#include "core/scenario.h"
#include "exec/experiment_runner.h"
#include "util/table_printer.h"

namespace {

using oodb::core::PolicyAxis;
using oodb::core::PolicyRegistry;

double Now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

void PrintUsage(std::FILE* to) {
  std::fprintf(to,
               "usage: semclust_run [--jobs N] [--json PATH] [--seed N] "
               "[--metrics-out PATH] [--dry-run] [--policies] "
               "[--list-policies] <scenario.json>...\n");
}

void PrintPolicies() {
  for (const PolicyAxis axis : oodb::core::kAllPolicyAxes) {
    std::printf("%-16s %s\n", oodb::core::PolicyAxisName(axis),
                PolicyRegistry::Global().KnownNames(axis).c_str());
  }
}

// The full naming surface: one line per policy level with the canonical
// spelling first and every registered alias after it, so scenario authors
// can discover which strings a `.scenario.json` file will resolve.
void PrintPolicyCatalog() {
  for (const PolicyAxis axis : oodb::core::kAllPolicyAxes) {
    std::printf("%s:\n", oodb::core::PolicyAxisName(axis));
    for (const auto& entry : PolicyRegistry::Global().Entries(axis)) {
      std::printf("  %-28s", entry.canonical.c_str());
      if (!entry.aliases.empty()) {
        std::string joined;
        for (const auto& alias : entry.aliases) {
          if (!joined.empty()) joined += ", ";
          joined += alias;
        }
        std::printf(" (aliases: %s)", joined.c_str());
      }
      std::printf("\n");
    }
  }
}

int RunScenario(const std::string& path, bool dry_run,
                const std::string& metrics_out) {
  auto spec_or = oodb::core::LoadScenarioFile(path);
  if (!spec_or.ok()) {
    std::fprintf(stderr, "semclust_run: %s\n",
                 spec_or.status().ToString().c_str());
    return 2;
  }
  oodb::core::ScenarioSpec spec = std::move(spec_or).value();

  // The bench binaries read these knobs in BaseConfig(); a scenario run
  // honours them the same way so CI can vary seed/telemetry without
  // editing the committed file.
  if (const char* seed = std::getenv("SEMCLUST_BENCH_SEED")) {
    spec.base.seed =
        static_cast<uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  if (const char* interval = std::getenv("SEMCLUST_BENCH_SERIES_S")) {
    spec.base.telemetry_interval_s = std::strtod(interval, nullptr);
  }
  if (const char* sp = std::getenv("SEMCLUST_SPANS")) {
    spec.base.profile_spans = sp[0] != '\0' && sp[0] != '0';
  }

  const auto cells = spec.Expand();
  std::printf("scenario %s -- %s: %zu cell(s)\n", spec.name.c_str(),
              spec.bench.c_str(), cells.size());
  if (!spec.description.empty()) {
    std::printf("%s\n", spec.description.c_str());
  }
  if (dry_run) {
    for (const auto& cell : cells) {
      std::printf("  %s\n", cell.cell_label.c_str());
    }
    return 0;
  }

  oodb::core::BenchReport report(spec.bench);
  std::vector<oodb::core::ModelConfig> configs;
  configs.reserve(cells.size());
  for (const auto& cell : cells) configs.push_back(cell.config);

  const oodb::exec::ExperimentRunner runner;
  const double start = Now();
  const auto outcomes = runner.Run(std::move(configs));
  const double wall = Now() - start;
  std::fprintf(stderr, "[exec] %zu cells, jobs=%d, %.1f s wall\n",
               cells.size(), runner.jobs(), wall);

  oodb::TablePrinter table({"cell", "mean resp", "physical IOs"});
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const auto& result = outcomes[i].result;
    report.Record(cells[i].cell_label, cells[i].policy, cells[i].workload,
                  result, outcomes[i].wall_s);
    table.AddRow({cells[i].cell_label,
                  oodb::FormatDouble(result.response_time.Mean() * 1000.0, 1) +
                      " ms",
                  std::to_string(result.total_physical_ios())});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  if (!metrics_out.empty()) {
    // The merged snapshot folds cells in submission order, so the file is
    // bit-identical at any job count. Several scenarios on one command
    // line each truncate-and-rewrite; the file ends up holding the last.
    std::ofstream out(metrics_out, std::ios::trunc);
    if (out) {
      out << oodb::exec::ExperimentRunner::MergeMetrics(outcomes).ToJson()
          << '\n';
    }
    if (!out) {
      std::fprintf(stderr, "semclust_run: --metrics-out %s is not writable\n",
                   metrics_out.c_str());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool dry_run = false;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    if (arg == "--policies") {
      PrintPolicies();
      return 0;
    }
    if (arg == "--list-policies") {
      PrintPolicyCatalog();
      return 0;
    }
    if (arg == "--dry-run") {
      dry_run = true;
      continue;
    }
    if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "semclust_run: %s needs a value\n", arg.c_str());
        return 2;
      }
      metrics_out = argv[++i];
      continue;
    }
    if (arg == "--jobs" || arg == "--json" || arg == "--seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "semclust_run: %s needs a value\n", arg.c_str());
        return 2;
      }
      // BenchReport and ExperimentRunner read their configuration from the
      // environment at construction, so the flags just set the same knobs.
      const char* var = arg == "--jobs"   ? "SEMCLUST_BENCH_JOBS"
                        : arg == "--json" ? "SEMCLUST_BENCH_JSON"
                                          : "SEMCLUST_BENCH_SEED";
      ::setenv(var, argv[++i], 1);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "semclust_run: unknown option %s\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  for (const auto& path : paths) {
    const int rc = RunScenario(path, dry_run, metrics_out);
    if (rc != 0) return rc;
  }
  return 0;
}
